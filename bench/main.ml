(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§8), plus the §7 CFG-generation timing and the
   ablations called out in DESIGN.md.

   Sections (pass names as CLI arguments to run a subset):
     table1   - Table 1: C1 violations and false-positive elimination
     table2   - Table 2: K1/K2 classification of remaining cases
     table3   - Table 3: IBs / IBTs / EQCs per benchmark, x86-32 and
                x86-64 flavours (tail-call optimization off/on)
     fig5     - Fig. 5: execution overhead of instrumentation, no
                concurrent update transactions
     fig6     - Fig. 6: overhead with a 50 Hz update-transaction thread
     txmicro  - §8.1 micro-benchmark: normalized check-transaction time
                for MCFI / TML / RW-lock / CAS-mutex (Bechamel)
     space    - §8.1 space overhead: code-size increase and table sizes
     air      - §8.3 AIR metric per CFI policy
     rop      - §8.3 ROP-gadget elimination
     cfggen   - §7 CFG-generation speed
     sandbox  - ablation: segmentation (x86-32) vs masking (x86-64)
     tary     - ablation: array Tary vs hash-map Tary lookup cost
     torture  - multi-domain check/update throughput under an update
                storm with mid-install kills, plus check throughput
                during delta installs (not a paper figure)
     telemetry- instrumentation overhead: torture check throughput and
                tight single-domain check latency with the telemetry
                layer off vs on (budget: <5% throughput loss)
     fuzz     - differential-fuzzing throughput: iterations of the full
                generate → pipeline → oracle-bank loop per second
     dispatch - byte vs threaded execution engines: checks/s through a
                hand-assembled CFI check loop and the tight per-check
                latency, across shard counts (gate: threaded >= 3x)
     json     - machine-readable report: the dlopen-chain scaling curve,
                the install-throughput numbers, the telemetry overhead,
                the fuzzing throughput, the fleet-survival numbers and
                the dispatch comparison, as Benchjson.output_file *)

module Process = Mcfi_runtime.Process
module Machine = Mcfi_runtime.Machine
module Tables = Idtables.Tables
module Tx = Idtables.Tx
module Objfile = Mcfi_compiler.Objfile

let suite = Suite.Programs.all

let line = String.make 78 '-'

(* `--dispatch byte|threaded` selects the execution engine for the
   program-running sections (fig5/fig6/…); the `dispatch` section always
   measures both.  Remaining arguments are section names. *)
let cli_dispatch, cli_sections =
  let rec split = function
    | "--dispatch" :: v :: rest ->
      let d, sections = split rest in
      let d =
        match Mcfi_runtime.Machine.dispatch_of_string v with
        | Ok d' -> (match d with None -> Some d' | some -> some)
        | Error e ->
          Fmt.epr "bench: %s@." e;
          exit 2
      in
      (d, sections)
    | a :: rest ->
      let d, sections = split rest in
      (d, a :: sections)
    | [] -> (None, [])
  in
  match Array.to_list Sys.argv with
  | _ :: args -> split args
  | [] -> (None, [])

let section name title f =
  let wanted = cli_sections = [] || List.mem name cli_sections in
  if wanted then begin
    Fmt.pr "@.%s@.%s (%s)@.%s@." line title name line;
    f ()
  end

(* ------------------------------------------------------------------ *)
(* shared pipeline helpers                                             *)

let checked_info (b : Suite.Programs.benchmark) =
  let src = Suite.Libc.header ^ b.source in
  Minic.Typecheck.check (Minic.Parser.parse ~name:b.name src)

let build ?(instrumented = true) ?(tco = false) (b : Suite.Programs.benchmark) =
  Mcfi.Pipeline.build_process ~instrumented ~tco
    ~sources:[ (b.name, b.source) ]
    ()

let time_run ?(repeats = 5) make_proc =
  (* median-of-n wall time of a full process run *)
  let times =
    List.init repeats (fun _ ->
        let proc = make_proc () in
        (match cli_dispatch with
        | Some d -> Machine.set_dispatch (Process.machine proc) d
        | None -> ());
        Process.start proc;
        let t0 = Unix.gettimeofday () in
        let reason = Machine.run (Process.machine proc) in
        let dt = Unix.gettimeofday () -. t0 in
        (match reason with
        | Machine.Exited 0 -> ()
        | r -> Fmt.epr "warning: run ended with %a@." Machine.pp_exit_reason r);
        (dt, Machine.steps (Process.machine proc)))
  in
  let sorted = List.sort compare (List.map fst times) in
  let median = List.nth sorted (repeats / 2) in
  let steps = snd (List.hd times) in
  (median, steps)

let linked ~instrumented (b : Suite.Programs.benchmark) =
  Mcfi.Pipeline.link_executable ~instrumented
    ~sources:[ (b.name, b.source) ]
    ()

let image_of obj =
  (* a standalone layout: data symbols resolve to a dummy address, which
     leaves instruction sizes (and hence gadget offsets) unchanged *)
  match
    Vmisa.Asm.assemble ~base:Vmisa.Abi.code_base
      ~resolve_data:(fun _ -> Some 16)
      obj.Objfile.o_items
  with
  | Ok prog -> prog.Vmisa.Asm.image
  | Error e -> failwith (Fmt.str "assemble: %a" Vmisa.Asm.pp_error e)

(* ------------------------------------------------------------------ *)

let table1 () =
  Fmt.pr "%-12s %5s %4s %4s %4s %4s %4s %4s %5s@." "benchmark" "SLOC" "VBE"
    "UC" "DC" "MF" "SU" "NF" "VAE";
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let r = Minic.Analyzer.analyze ~source:b.source (checked_info b) in
      Fmt.pr "%-12s %5d %4d %4d %4d %4d %4d %4d %5d@." b.name r.sloc r.vbe
        r.uc r.dc r.mf r.su r.nf r.vae)
    suite;
  (* the libc row corresponds to the paper's MUSL paragraph (§7) *)
  let info =
    Minic.Typecheck.check (Minic.Parser.parse ~name:"libc" Suite.Libc.source)
  in
  let r = Minic.Analyzer.analyze ~source:Suite.Libc.source info in
  Fmt.pr "%-12s %5d %4d %4d %4d %4d %4d %4d %5d@." "libc" r.sloc r.vbe r.uc
    r.dc r.mf r.su r.nf r.vae

let table2 () =
  Fmt.pr "%-12s %4s %4s@." "benchmark" "K1" "K2";
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let r = Minic.Analyzer.analyze ~source:b.source (checked_info b) in
      if r.vae > 0 then Fmt.pr "%-12s %4d %4d@." b.name r.k1 r.k2)
    suite;
  Fmt.pr "(benchmarks with zero remaining violations omitted, as in the paper)@."

let table3 () =
  Fmt.pr "%-12s | %6s %6s %6s | %6s %6s %6s@." "" "x86-32" "" "" "x86-64" ""
    "";
  Fmt.pr "%-12s | %6s %6s %6s | %6s %6s %6s@." "benchmark" "IBs" "IBTs"
    "EQCs" "IBs" "IBTs" "EQCs";
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let stats tco =
        let proc = build ~tco b in
        Option.get (Process.cfg_stats proc)
      in
      let s32 = stats false in
      (* the x86-64 flavour: LLVM's tail-call optimization on *)
      let s64 = stats true in
      Fmt.pr "%-12s | %6d %6d %6d | %6d %6d %6d@." b.name
        s32.Cfg.Cfggen.n_ibs s32.n_ibts s32.n_eqcs s64.n_ibs s64.n_ibts
        s64.n_eqcs)
    suite

let fig5 () =
  Fmt.pr "%-12s %10s %10s %8s %10s %10s %8s@." "benchmark" "plain(ms)"
    "mcfi(ms)" "time%" "plain(Mi)" "mcfi(Mi)" "instr%";
  let tsum = ref 0.0 and isum = ref 0.0 and n = ref 0 in
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let t_plain, s_plain = time_run (fun () -> build ~instrumented:false b) in
      let t_mcfi, s_mcfi = time_run (fun () -> build ~instrumented:true b) in
      let tpct = 100.0 *. ((t_mcfi /. t_plain) -. 1.0) in
      let ipct =
        100.0 *. ((float_of_int s_mcfi /. float_of_int s_plain) -. 1.0)
      in
      tsum := !tsum +. tpct;
      isum := !isum +. ipct;
      incr n;
      Fmt.pr "%-12s %10.1f %10.1f %7.1f%% %10.2f %10.2f %7.1f%%@." b.name
        (t_plain *. 1000.) (t_mcfi *. 1000.) tpct
        (float_of_int s_plain /. 1e6)
        (float_of_int s_mcfi /. 1e6)
        ipct)
    suite;
  Fmt.pr "%-12s %10s %10s %7.1f%% %10s %10s %7.1f%%@." "average" "" ""
    (!tsum /. float_of_int !n) "" ""
    (!isum /. float_of_int !n);
  Fmt.pr
    "(time%% is wall-clock on the simulator; instr%% is retired-instruction@.\
    \ overhead - the simulator executes check reads serially, where the@.\
    \ paper's CPU issues the two table reads in parallel; see EXPERIMENTS.md)@."

(* The paper runs an updater thread at 50 Hz of wall-clock time.  On this
   reproduction's serial simulator (and the single-core CI box it runs
   on), a concurrent domain would only measure OS scheduling, so updates
   fire on the {e simulated} clock instead: one full-table update
   transaction every 200k retired instructions — 50 Hz at the 10 MIPS the
   VM roughly sustains.  An update landing between a check's Bary and
   Tary reads forces the VM through the retry loop, whose instructions
   are part of the measured run, exactly the effect Fig. 6 quantifies.
   (True cross-thread safety is property-tested in test_idtables.) *)
let fig6 () =
  let interval = 200_000 in
  Fmt.pr "%-12s %10s %13s %8s %9s %9s@." "benchmark" "mcfi(ms)"
    "mcfi+50Hz(ms)" "extra%" "updates" "upd(ms)";
  let sum = ref 0.0 and n = ref 0 in
  let stepped_run ~updates (b : Suite.Programs.benchmark) =
    let proc = build ~instrumented:true b in
    let tables = Option.get (Process.tables proc) in
    Process.start proc;
    let m = Process.machine proc in
    let count = ref 0 in
    let upd_time = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    let rec go next_update =
      match Machine.step m with
      | Some reason -> reason
      | None ->
        if updates && Machine.steps m >= next_update then begin
          let u0 = Unix.gettimeofday () in
          ignore (Tx.refresh tables);
          upd_time := !upd_time +. (Unix.gettimeofday () -. u0);
          incr count;
          go (next_update + interval)
        end
        else go next_update
    in
    let reason = go interval in
    let dt = Unix.gettimeofday () -. t0 in
    (match reason with
    | Machine.Exited 0 -> ()
    | r -> Fmt.epr "warning: run ended with %a@." Machine.pp_exit_reason r);
    (dt, !count, !upd_time)
  in
  let median_run ~updates b =
    let runs = List.init 3 (fun _ -> stepped_run ~updates b) in
    let sorted = List.sort compare (List.map (fun (t, _, _) -> t) runs) in
    let _, count, upd = List.hd runs in
    (List.nth sorted 1, count, upd)
  in
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let t_mcfi, _, _ = median_run ~updates:false b in
      let t_upd, count, upd_ms = median_run ~updates:true b in
      let pct = 100.0 *. ((t_upd /. t_mcfi) -. 1.0) in
      sum := !sum +. pct;
      incr n;
      Fmt.pr "%-12s %10.1f %13.1f %7.1f%% %9d %9.1f@." b.name
        (t_mcfi *. 1000.) (t_upd *. 1000.) pct count (upd_ms *. 1000.))
    suite;
  Fmt.pr "%-12s %10s %13s %7.1f%%@." "average" "" "" (!sum /. float_of_int !n);
  Fmt.pr
    "(paper: 6-7%% average with 50 Hz updates vs 4-6%% without; upd(ms) is@.\
    \ the exact time spent inside update transactions — wall-clock deltas@.\
    \ beyond it are scheduler noise on a shared single-core host)@."

(* ------------------------------------------------------------------ *)
(* Bechamel helpers                                                    *)

let bechamel_run tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second 2.0) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Toolkit.Instance.monotonic_clock raw

let estimate results key =
  let open Bechamel in
  match Hashtbl.find_opt results key with
  | Some ols -> begin
    match Analyze.OLS.estimates ols with
    | Some [ est ] -> Some est
    | Some _ | None -> None
  end
  | None -> None

(* §8.1 transaction micro-benchmark *)
let txmicro () =
  let open Bechamel in
  let code_base = 0x1000 in
  let mk (module B : Idtables.Tx_baselines.S) =
    let t = B.create ~code_base ~capacity:4096 ~bary_slots:64 in
    let tary = List.init 256 (fun k -> (code_base + (4 * k), k mod 8)) in
    let bary = List.init 64 (fun k -> (k, k mod 8)) in
    B.update t ~tary ~bary;
    (* one passing check per run: exactly the operation the paper times
       (tary slot 3 has ECN 3, matching bary slot 3) *)
    let target = code_base + (4 * 3) in
    assert (B.check t ~bary_index:3 ~target);
    Test.make ~name:B.name
      (Staged.stage (fun () -> ignore (B.check t ~bary_index:3 ~target)))
  in
  let tests =
    Test.make_grouped ~name:"check-tx"
      [
        mk (module Idtables.Tx_baselines.Mcfi);
        mk (module Idtables.Tx_baselines.Tml);
        mk (module Idtables.Tx_baselines.Rwlock);
        mk (module Idtables.Tx_baselines.Cas_mutex);
      ]
  in
  let results = bechamel_run tests in
  let mcfi =
    Option.value ~default:1.0 (estimate results "check-tx/mcfi")
  in
  Fmt.pr "%-8s %14s %12s@." "scheme" "ns/check" "normalized";
  List.iter
    (fun name ->
      match estimate results ("check-tx/" ^ name) with
      | Some ns -> Fmt.pr "%-8s %14.1f %12.2f@." name ns (ns /. mcfi)
      | None -> Fmt.pr "%-8s (no estimate)@." name)
    [ "mcfi"; "tml"; "rwlock"; "mutex" ];
  Fmt.pr "(paper reports MCFI=1, TML=2, RWL=29, Mutex=22 on real hardware)@."

(* ------------------------------------------------------------------ *)

let space () =
  Fmt.pr "%-12s %10s %10s %8s %10s@." "benchmark" "plain(B)" "mcfi(B)"
    "code+%" "tables(B)";
  let sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let p = String.length (image_of (linked ~instrumented:false b)) in
      let mcfi = linked ~instrumented:true b in
      let m = String.length (image_of mcfi) in
      let pct = 100.0 *. ((float_of_int m /. float_of_int p) -. 1.0) in
      sum := !sum +. pct;
      incr n;
      (* Tary: one 4-byte slot per 4 code bytes = code size; Bary: 4B/slot *)
      let tables = m + (4 * List.length mcfi.Objfile.o_sites) in
      Fmt.pr "%-12s %10d %10d %7.1f%% %10d@." b.name p m pct tables)
    suite;
  Fmt.pr "%-12s %10s %10s %7.1f%%@." "average" "" "" (!sum /. float_of_int !n);
  Fmt.pr "(paper: ~17%% static code-size increase; runtime tables = code size)@."

let air () =
  (* average AIR over the suite per policy, like the paper's summary *)
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let proc = build ~instrumented:true b in
      let input = Process.cfg_input proc in
      let code_bytes =
        Machine.code_end (Process.machine proc) - Vmisa.Abi.code_base
      in
      List.iter
        (fun (name, v) ->
          let sum, k =
            Option.value ~default:(0.0, 0) (Hashtbl.find_opt totals name)
          in
          Hashtbl.replace totals name (sum +. v, k + 1))
        (Security.Air.table ~input ~code_bytes))
    suite;
  Fmt.pr "%-12s %8s@." "policy" "AIR";
  List.iter
    (fun p ->
      let name = Security.Policies.name p in
      match Hashtbl.find_opt totals name with
      | Some (sum, k) -> Fmt.pr "%-12s %8.4f@." name (sum /. float_of_int k)
      | None -> ())
    Security.Policies.all;
  Fmt.pr "(paper: MCFI 0.9960/0.9999 beats binCFI 0.987/0.988 and chunk CFI)@."

let rop () =
  Fmt.pr "%-12s %9s %9s %8s@." "benchmark" "gadgets" "surviving" "elim%";
  let sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      (* original binary: the plain build's byte image; depth 12 so that
         even whole check-sequence prefixes count as candidate gadgets *)
      let max_len = 12 in
      let original =
        Security.Gadget.scan ~max_len ~base:Vmisa.Abi.code_base
          (image_of (linked ~instrumented:false b))
      in
      (* hardened binary: scan the instrumented process's loaded image;
         only gadget starts that are valid aligned Tary targets remain
         reachable through checked branches *)
      let proc = build ~instrumented:true b in
      let tables = Option.get (Process.tables proc) in
      let hardened =
        Security.Gadget.scan ~max_len ~base:Vmisa.Abi.code_base
          (image_of (linked ~instrumented:true b))
      in
      let valid addr = Idtables.Id.valid (Tables.tary_read tables addr) in
      let surviving =
        Security.Gadget.survivors ~valid_targets:valid hardened
      in
      let total = Security.Gadget.count_unique original in
      let surv = Security.Gadget.count_unique surviving in
      let rate = Security.Gadget.elimination_rate ~total ~surviving:surv in
      sum := !sum +. rate;
      incr n;
      Fmt.pr "%-12s %9d %9d %7.2f%%@." b.name total surv rate)
    suite;
  Fmt.pr "%-12s %9s %9s %7.2f%%@." "average" "" "" (!sum /. float_of_int !n);
  Fmt.pr "(paper: 96.93%%/95.75%% of gadgets eliminated on x86-32/64)@."

let cfggen () =
  Fmt.pr "%-12s %10s %10s %12s@." "benchmark" "code(B)" "cfg(ms)" "ms/MB";
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let proc = build ~instrumented:true b in
      let code_bytes =
        Machine.code_end (Process.machine proc) - Vmisa.Abi.code_base
      in
      (* time fresh regenerations on the loaded process *)
      let input = Process.cfg_input proc in
      let t0 = Unix.gettimeofday () in
      let rounds = 20 in
      for _ = 1 to rounds do
        ignore (Cfg.Cfggen.generate input)
      done;
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int rounds in
      Fmt.pr "%-12s %10d %10.2f %12.1f@." b.name code_bytes ms
        (ms /. (float_of_int code_bytes /. 1e6)))
    suite;
  Fmt.pr "(paper: ~150 ms for gcc's 2.7 MB of code)@.";
  (* scaling curve: an N-module dlopen chain, each link timed under full
     regeneration and under the incremental linker (oracle-checked) *)
  Fmt.pr "@.dlopen chain (per-link wall time, min of rounds):@.";
  Fmt.pr "%-8s %10s %10s %9s@." "module" "full(ms)" "incr(ms)" "speedup";
  let samples = Mcfi.Benchjson.dlopen_chain ~modules:16 ~fns:24 ~rounds:4 () in
  List.iter
    (fun s ->
      Fmt.pr "%-8d %10.3f %10.3f %8.1fx@." s.Mcfi.Benchjson.ls_module
        s.Mcfi.Benchjson.ls_full_ms s.Mcfi.Benchjson.ls_incr_ms
        (s.Mcfi.Benchjson.ls_full_ms /. s.Mcfi.Benchjson.ls_incr_ms))
    samples;
  Fmt.pr
    "(full regenerates the whole CFG per load; incr merges the new module@.\
    \ and installs a delta — §7's \"a few milliseconds per dlopen\")@."

(* Ablation: the sandboxing flavours of §5.1 — x86-32 memory segmentation
   (stores confined in hardware, no extra instructions) vs. x86-64 address
   masking (an AND-clipped effective address per non-stack store). The
   paper's Fig. 5 reports x86-32 slightly cheaper partly for this reason;
   here the difference is isolated exactly. *)
let sandbox_ablation () =
  Fmt.pr "%-12s %10s %10s %9s %10s %10s %8s@." "benchmark" "seg(Mi)"
    "mask(Mi)" "instrΔ%" "seg(B)" "mask(B)" "sizeΔ%";
  let isum = ref 0.0 and ssum = ref 0.0 and n = ref 0 in
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let run sandbox =
        let proc =
          Mcfi.Pipeline.build_process ~sandbox ~sources:[ (b.name, b.source) ]
            ()
        in
        Process.start proc;
        (match Machine.run (Process.machine proc) with
        | Machine.Exited 0 -> ()
        | r -> Fmt.epr "warning: %a@." Machine.pp_exit_reason r);
        let steps = Machine.steps (Process.machine proc) in
        let bytes =
          Machine.code_end (Process.machine proc) - Vmisa.Abi.code_base
        in
        (steps, bytes)
      in
      let seg_i, seg_b = run Vmisa.Abi.Segment in
      let mask_i, mask_b = run Vmisa.Abi.Mask in
      let ipct =
        100.0 *. ((float_of_int mask_i /. float_of_int seg_i) -. 1.0)
      in
      let spct =
        100.0 *. ((float_of_int mask_b /. float_of_int seg_b) -. 1.0)
      in
      isum := !isum +. ipct;
      ssum := !ssum +. spct;
      incr n;
      Fmt.pr "%-12s %10.2f %10.2f %8.1f%% %10d %10d %7.1f%%@." b.name
        (float_of_int seg_i /. 1e6)
        (float_of_int mask_i /. 1e6)
        ipct seg_b mask_b spct)
    suite;
  Fmt.pr "%-12s %10s %10s %8.1f%% %10s %10s %7.1f%%@." "average" "" ""
    (!isum /. float_of_int !n)
    "" ""
    (!ssum /. float_of_int !n);
  Fmt.pr
    "(segmentation = the paper's x86-32 design, masking = x86-64; the delta@.\
    \ is the pure cost of software write sandboxing)@."

(* ablation: array-backed Tary vs a hash-map Tary *)
let tary () =
  let open Bechamel in
  let code_base = 0x1000 in
  let n = 4096 in
  let tables = Tables.create ~code_base ~capacity:(4 * n) ~bary_slots:4 () in
  ignore
    (Tx.update tables
       ~tary:(List.init n (fun k -> (code_base + (4 * k), k mod 16)))
       ~bary:[ (0, 0) ]);
  let hash = Hashtbl.create n in
  List.iteri
    (fun k (addr, ecn) ->
      ignore k;
      Hashtbl.replace hash addr (Idtables.Id.pack ~ecn ~version:1))
    (List.init n (fun k -> (code_base + (4 * k), k mod 16)));
  let tests =
    Test.make_grouped ~name:"tary"
      [
        Test.make ~name:"array"
          (Staged.stage (fun () ->
               for k = 0 to 255 do
                 ignore
                   (Tables.tary_read tables (code_base + (4 * (k * 7 mod n))))
               done));
        Test.make ~name:"hashmap"
          (Staged.stage (fun () ->
               for k = 0 to 255 do
                 ignore
                   (Hashtbl.find_opt hash (code_base + (4 * (k * 7 mod n))))
               done));
      ]
  in
  let results = bechamel_run tests in
  Fmt.pr "%-8s %14s@." "repr" "ns/256 reads";
  List.iter
    (fun name ->
      match estimate results ("tary/" ^ name) with
      | Some est -> Fmt.pr "%-8s %14.1f@." name est
      | None -> Fmt.pr "%-8s (no estimate)@." name)
    [ "array"; "hashmap" ];
  Fmt.pr "(the paper chooses the array for exactly this lookup-cost reason)@."

(* ---- torture: multi-domain throughput under an update storm ---- *)

(* Not a paper figure: the robustness work's regression guard.  One
   acceptance-shaped scenario (4 checkers, 2 updaters, past the 2^14
   version wall, mid-install kills) reporting check/update throughput and
   the recovery counters. *)
let torture () =
  let sc = Stress.default ~seed:0xBE7C4L in
  Fmt.pr "%a@." Stress.pp_scenario sc;
  let r = Stress.run sc in
  Fmt.pr "%a@." Stress.pp_report r;
  Fmt.pr "throughput: %.0f checks/s, %.0f installs/s@."
    (float_of_int r.Stress.rp_checks /. r.Stress.rp_elapsed_s)
    (float_of_int r.Stress.rp_installs /. r.Stress.rp_elapsed_s);
  if r.Stress.rp_anomalies <> [] then
    Fmt.pr "WARNING: oracle anomalies above — investigate before trusting \
            the numbers@.";
  Fmt.pr "@.check throughput during delta installs:@.";
  let tp = Stress.install_throughput ~seed:0x1DE17AL () in
  Fmt.pr
    "%d checks (%.0f/s overall), %d delta installs (%.0f/s, %d with \
     carries)@.%.0f checks/s during install windows (%.1f%% of wall time \
     installing)@."
    tp.Stress.tp_checks
    (float_of_int tp.Stress.tp_checks /. tp.Stress.tp_elapsed_s)
    tp.Stress.tp_installs
    (float_of_int tp.Stress.tp_installs /. tp.Stress.tp_elapsed_s)
    tp.Stress.tp_carries
    (float_of_int tp.Stress.tp_checks_during_install /. tp.Stress.tp_install_s)
    (100.0 *. tp.Stress.tp_install_s /. tp.Stress.tp_elapsed_s)

(* ---- telemetry: the cost of observing ---- *)

type overhead = {
  oh_disabled_cps : float;  (* torture checks/s, telemetry off *)
  oh_enabled_cps : float;  (* the same scenario, telemetry on *)
  oh_ratio : float;  (* median of per-pair enabled/disabled ratios *)
  oh_tight_disabled_ns : float;  (* single-domain Tx.check, off *)
  oh_tight_enabled_ns : float;  (* single-domain Tx.check, on *)
}

(* Two views of the same budget.  The torture ratio is the acceptance
   number (the instrumented paths under a realistic multi-domain load,
   harness costs identical on both sides); the tight loop is the honest
   per-check price with nothing amortizing it.  Many short interleaved
   runs: multi-domain throughput on a small machine is at the mercy of
   the scheduler (a 1-core box time-slices all seven domains, and a
   single run's throughput swings ±30%).  The reported ratio is the
   median of the {e per-pair} enabled/disabled ratios, not the ratio of
   two medians: each pair runs back to back under near-identical
   scheduler conditions, so slow drift across the campaign cancels
   inside every pair instead of landing on one side of the quotient. *)
let overhead_pairs = 21

let telemetry_overhead () =
  let was_enabled = Telemetry.enabled () in
  let sc =
    { (Stress.default ~seed:0x7E1E0L) with updates = 1024; kill_every = 0 }
  in
  let run_cps () =
    let r = Stress.run sc in
    float_of_int r.Stress.rp_checks /. r.Stress.rp_elapsed_s
  in
  let median l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  Telemetry.disable ();
  Gc.compact ();
  ignore (run_cps ());
  let offs = ref [] and ons = ref [] in
  for _ = 1 to overhead_pairs do
    Telemetry.disable ();
    let off = run_cps () in
    Telemetry.enable ();
    let on = run_cps () in
    offs := off :: !offs;
    ons := on :: !ons
  done;
  (* ratio of median throughputs, not median of per-pair ratios: a
     scheduling stall poisons whichever side it lands on, and on a
     loaded (or single-core) box enough pairs catch one that the
     per-pair median drifts; the per-side medians discard them *)
  let disabled_cps = median !offs and enabled_cps = median !ons in
  let ratio = enabled_cps /. disabled_cps in
  (* the tight loop: one passing check, nothing else *)
  let code_base = 0x1000 in
  let t = Tables.create ~code_base ~capacity:4096 ~bary_slots:64 () in
  ignore
    (Tx.update t
       ~tary:(List.init 256 (fun k -> (code_base + (4 * k), k mod 8)))
       ~bary:(List.init 64 (fun k -> (k, k mod 8))));
  let target = code_base + (4 * 3) in
  let iters = 2_000_000 in
  let tight () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Tx.check t ~bary_index:3 ~target)
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let best_ns n f =
    List.fold_left Float.min infinity (List.init n (fun _ -> f ()))
  in
  Telemetry.disable ();
  let tight_disabled = best_ns 3 tight in
  Telemetry.enable ();
  let tight_enabled = best_ns 3 tight in
  Telemetry.reset ();
  if not was_enabled then Telemetry.disable ();
  {
    oh_disabled_cps = disabled_cps;
    oh_enabled_cps = enabled_cps;
    oh_ratio = ratio;
    oh_tight_disabled_ns = tight_disabled;
    oh_tight_enabled_ns = tight_enabled;
  }

let telemetry_section () =
  let oh = telemetry_overhead () in
  let ratio = oh.oh_ratio in
  Fmt.pr
    "torture check throughput (4 checkers, 2 updaters, medians over %d \
     interleaved pairs):@."
    overhead_pairs;
  Fmt.pr "  telemetry off  %12.0f checks/s@." oh.oh_disabled_cps;
  Fmt.pr "  telemetry on   %12.0f checks/s@." oh.oh_enabled_cps;
  Fmt.pr "  ratio %.3f (budget: >= 0.95) — overhead %.1f%%@." ratio
    (100.0 *. (1.0 -. ratio));
  Fmt.pr "@.tight single-domain passing check:@.";
  Fmt.pr "  telemetry off  %8.1f ns/check@." oh.oh_tight_disabled_ns;
  Fmt.pr "  telemetry on   %8.1f ns/check@." oh.oh_tight_enabled_ns;
  Fmt.pr
    "(the torture ratio is the acceptance number; the tight loop is the@.\
    \ un-amortized per-check price of the sampled-event design)@.";
  if ratio < 0.95 then
    Fmt.pr "WARNING: telemetry overhead exceeds the 5%% budget@."

(* ---- fuzz: differential-fuzzing throughput ---- *)

(* One iteration = generate a program, build it instrumented and
   uninstrumented, run both, and drive all five differential oracles.
   The seed is fixed so the workload is identical across runs. *)
let fuzz_throughput () =
  Fuzz.Driver.run
    {
      Fuzz.Driver.c_seed = 0xBE7CBL;
      c_iters = 40;
      c_time_budget = 0.;
      c_corpus_dir = None;
      c_drop_check = None;
    }

let fuzz_section () =
  let oc = fuzz_throughput () in
  (match oc.Fuzz.Driver.oc_failure with
  | None -> ()
  | Some rp ->
    failwith
      (Printf.sprintf "fuzz bench hit an oracle failure (seed %Ld): %s"
         rp.Fuzz.Driver.rp_seed rp.Fuzz.Driver.rp_failure.Fuzz.Oracle.f_msg));
  Fmt.pr "full generate → pipeline → oracle-bank loop, fixed seed:@.";
  Fmt.pr "  %d iterations in %.1f s — %.2f iters/s@." oc.Fuzz.Driver.oc_iters
    oc.Fuzz.Driver.oc_elapsed
    (float_of_int oc.Fuzz.Driver.oc_iters /. oc.Fuzz.Driver.oc_elapsed)

(* ---- dispatch: byte vs threaded execution engines ---- *)

(* The measured program is the enforcement hot path itself: a
   hand-assembled loop whose body is exactly the rewriter's check
   sequence — Bary_load; Tary_load; Cmp_rr; Jcc; Jmp_r — with the
   branch target being the loop head, so every iteration is one passing
   CFI check plus one committed indirect jump.  Under the byte engine
   each iteration pays five fetch/decode/dispatch steps; under the
   threaded engine it is a single fused check+Jmp_r superinstruction
   whose hoisted table cache hits every time (the tables never move
   during the loop).  Five retired instructions per iteration under
   both engines, so checks/s and ns/check divide out identically. *)

let dispatch_slot = 3
let dispatch_class = 5

let dispatch_loop_items =
  Vmisa.Asm.
    [
      Mov_sym (12, "loop");
      Align 4;
      Label "loop";
      I (Vmisa.Instr.Bary_load (13, dispatch_slot));
      I (Vmisa.Instr.Tary_load (11, 12));
      I (Vmisa.Instr.Cmp_rr (13, 11));
      Jcc_sym (Vmisa.Instr.Ne, "check");
      I (Vmisa.Instr.Jmp_r 12);
      Label "check";
      I Vmisa.Instr.Halt;
    ]

(* instructions retired before the loop head: Mov_ri + two alignment
   Nops *)
let dispatch_prologue_steps = 3

let dispatch_loop_measure ~tables ~engine ~checks =
  let code_base = Tables.code_base tables in
  let prog =
    match Vmisa.Asm.assemble ~base:code_base dispatch_loop_items with
    | Ok p -> p
    | Error e -> failwith (Fmt.str "dispatch bench: %a" Vmisa.Asm.pp_error e)
  in
  let loop_addr = Hashtbl.find prog.Vmisa.Asm.labels "loop" in
  ignore
    (Tx.update tables
       ~tary:[ (loop_addr, dispatch_class) ]
       ~bary:[ (dispatch_slot, dispatch_class) ]);
  let m =
    Machine.create ~tables ~dispatch:engine ~code_base
      ~code_capacity:4096 ~data_words:4096 ()
  in
  ignore (Machine.append_code m prog.Vmisa.Asm.image);
  (* warm-up: fill the decode memo (byte) / pre-decoded stream
     (threaded) outside the timed window *)
  Machine.set_pc m code_base;
  (match Machine.run ~fuel:64 m with
  | Machine.Out_of_fuel -> ()
  | r -> failwith (Fmt.str "dispatch bench warm-up: %a" Machine.pp_exit_reason r));
  Machine.set_pc m code_base;
  let s0 = Machine.steps m in
  let fuel = dispatch_prologue_steps + (5 * checks) in
  let t0 = Unix.gettimeofday () in
  (match Machine.run ~fuel m with
  | Machine.Out_of_fuel -> ()
  | r -> failwith (Fmt.str "dispatch bench: %a" Machine.pp_exit_reason r));
  let elapsed = Unix.gettimeofday () -. t0 in
  Machine.release m;
  let retired_checks =
    (Machine.steps m - s0 - dispatch_prologue_steps) / 5
  in
  let checks_per_s = float_of_int retired_checks /. elapsed in
  let ns_per_check = elapsed *. 1e9 /. float_of_int retired_checks in
  (checks_per_s, ns_per_check)

type dispatch_row = {
  dr_shards : int;
  dr_byte_cps : float;
  dr_threaded_cps : float;
  dr_byte_ns : float;
  dr_threaded_ns : float;
}

let dispatch_shard_counts = [ 1; 4 ]
let dispatch_checks = 400_000
let dispatch_rounds = 5

let dispatch_measure () =
  let was_enabled = Telemetry.enabled () in
  (* profiling in the byte step and the threaded loop's byte fallback
     both key on the telemetry gate: the engines are only both on their
     fast paths with it off *)
  Telemetry.disable ();
  (* inside the json campaign this runs after the fleet and fuzz
     workloads have grown the major heap; compact first so GC slices do
     not land inside the timed loops *)
  Gc.compact ();
  let best samples =
    List.fold_left
      (fun (bc, bn) (c, n) -> (Float.max bc c, Float.min bn n))
      (neg_infinity, infinity) samples
  in
  let rows =
    List.map
      (fun nsh ->
        let shs =
          Idtables.Shards.create ~stm:Idtables.Stm.Tml ~shards:nsh
            ~code_base:Vmisa.Abi.code_base ~capacity:4096 ~bary_slots:64 ()
        in
        let tables = Idtables.Shards.tables shs 0 in
        (* interleave the engines' rounds so ambient drift (scheduler,
           GC) hits both sides alike; best-of still picks each engine's
           best round independently *)
        let samples =
          List.init dispatch_rounds (fun _ ->
              let b =
                dispatch_loop_measure ~tables ~engine:Machine.Byte
                  ~checks:dispatch_checks
              in
              let t =
                dispatch_loop_measure ~tables ~engine:Machine.Threaded
                  ~checks:dispatch_checks
              in
              (b, t))
        in
        let byte_cps, byte_ns = best (List.map fst samples) in
        let th_cps, th_ns = best (List.map snd samples) in
        {
          dr_shards = nsh;
          dr_byte_cps = byte_cps;
          dr_threaded_cps = th_cps;
          dr_byte_ns = byte_ns;
          dr_threaded_ns = th_ns;
        })
      dispatch_shard_counts
  in
  if was_enabled then Telemetry.enable ();
  rows

let dispatch_json rows =
  let one = List.hd rows in
  Mcfi.Benchjson.Obj
    [
      ("tight_check_byte_ns", Num one.dr_byte_ns);
      ("tight_check_threaded_ns", Num one.dr_threaded_ns);
      ("tight_check_speedup", Num (one.dr_byte_ns /. one.dr_threaded_ns));
      ( "rows",
        Arr
          (List.map
             (fun r ->
               Mcfi.Benchjson.Obj
                 [
                   ("shards", Num (float_of_int r.dr_shards));
                   ("byte_checks_per_s", Num r.dr_byte_cps);
                   ("threaded_checks_per_s", Num r.dr_threaded_cps);
                   ("byte_check_ns", Num r.dr_byte_ns);
                   ("threaded_check_ns", Num r.dr_threaded_ns);
                 ])
             rows) );
    ]

let dispatch_section () =
  let rows = dispatch_measure () in
  Fmt.pr "interpreted CFI check loop (check + indirect jump), %d checks, \
          best of %d:@."
    dispatch_checks dispatch_rounds;
  List.iter
    (fun r ->
      Fmt.pr
        "  %d shard(s): byte %10.0f checks/s (%6.1f ns) | threaded %10.0f \
         checks/s (%6.1f ns) — %.1fx@."
        r.dr_shards r.dr_byte_cps r.dr_byte_ns r.dr_threaded_cps
        r.dr_threaded_ns
        (r.dr_byte_ns /. r.dr_threaded_ns))
    rows;
  let one = List.hd rows in
  if one.dr_byte_ns /. one.dr_threaded_ns < 3.0 then
    Fmt.pr "WARNING: threaded dispatch below the 3x tight-check gate@."

(* ---- fleet: tenant supervision under an install storm ---- *)

(* A small deterministic fleet: enough tenants and chaos to produce
   kills, restarts and shed admissions, small enough to finish in a few
   hundred milliseconds.  The run must come back clean — an anomaly or
   an unrecovered tenant is a correctness failure, not a slow number. *)
let fleet_run () =
  let r = Supervisor.Fleet.run (Supervisor.Fleet.smoke ~seed:0xF1EE7L) in
  if not (Supervisor.Fleet.ok r) then
    failwith
      (Fmt.str "fleet bench failed its own acceptance gate: %a"
         Supervisor.Fleet.pp_report r);
  r

let fleet_section () =
  let r = fleet_run () in
  Fmt.pr "supervised fleet, seeded chaos (kills, wedge, storm, churn):@.";
  Fmt.pr "  survival %.2f (%d/%d serving), %d quarantined@."
    r.Supervisor.Fleet.fr_survival_rate r.Supervisor.Fleet.fr_survivors
    r.Supervisor.Fleet.fr_config.Supervisor.Fleet.fc_tenants
    r.Supervisor.Fleet.fr_quarantined;
  Fmt.pr "  %d kills, %d restarts; recovery p50 %.1f ms, p99 %.1f ms@."
    r.Supervisor.Fleet.fr_kills r.Supervisor.Fleet.fr_restarts
    r.Supervisor.Fleet.fr_recovery_p50_ms r.Supervisor.Fleet.fr_recovery_p99_ms;
  Fmt.pr "  installs: %d admitted, %d served, %d shed, %d deferred@."
    r.Supervisor.Fleet.fr_admitted r.Supervisor.Fleet.fr_served
    r.Supervisor.Fleet.fr_shed r.Supervisor.Fleet.fr_deferred

let fleet_json r =
  Mcfi.Benchjson.Obj
    [
      ("tenants", Num (float_of_int r.Supervisor.Fleet.fr_config.Supervisor.Fleet.fc_tenants));
      ("survival_rate", Num r.Supervisor.Fleet.fr_survival_rate);
      ("kills", Num (float_of_int r.Supervisor.Fleet.fr_kills));
      ("restarts", Num (float_of_int r.Supervisor.Fleet.fr_restarts));
      ("quarantined", Num (float_of_int r.Supervisor.Fleet.fr_quarantined));
      ("recovery_ms_p50", Num r.Supervisor.Fleet.fr_recovery_p50_ms);
      ("recovery_ms_p99", Num r.Supervisor.Fleet.fr_recovery_p99_ms);
      ("installs_admitted", Num (float_of_int r.Supervisor.Fleet.fr_admitted));
      ("installs_served", Num (float_of_int r.Supervisor.Fleet.fr_served));
      ("installs_shed", Num (float_of_int r.Supervisor.Fleet.fr_shed));
      ("checks", Num (float_of_int r.Supervisor.Fleet.fr_checks));
      ("elapsed_s", Num r.Supervisor.Fleet.fr_elapsed_s);
    ]

(* ---- sharded installs: scaling and wedged-shard confinement ---- *)

let shard_counts = [ 1; 2; 4 ]

let shards_json () =
  let rows =
    List.map
      (fun n ->
        Stress.shard_scaling ~updaters:4 ~stm:Idtables.Stm.Tml ~shards:n
          ~seed:0x5AAD5L ())
      shard_counts
  in
  let baseline = List.hd rows in
  let best = List.nth rows (List.length rows - 1) in
  (* the honest signal on any core count: how many installs still land
     while shard 0's update lock is wedged.  One shard = one lock =
     nothing lands; N shards keep the other homes serving. *)
  let confinement =
    float_of_int best.Stress.ss_wedged_installs
    /. float_of_int (max 1 baseline.Stress.ss_wedged_installs)
  in
  Fmt.pr "sharded installs (tml), %d updaters:@." 4;
  List.iter
    (fun r ->
      Fmt.pr "  %d shard(s): %.0f installs/s; %d installs during a %.2fs \
              wedge of shard 0@."
        r.Stress.ss_shards r.Stress.ss_installs_per_s r.Stress.ss_wedged_installs
        r.Stress.ss_wedge_s)
    rows;
  Mcfi.Benchjson.Obj
    [
      ("stm", Str (Idtables.Stm.name Idtables.Stm.Tml));
      ( "rows",
        Arr
          (List.map
             (fun r ->
               Mcfi.Benchjson.Obj
                 [
                   ("shards", Num (float_of_int r.Stress.ss_shards));
                   ("installs", Num (float_of_int r.Stress.ss_installs));
                   ("installs_per_s", Num r.Stress.ss_installs_per_s);
                   ("wedge_s", Num r.Stress.ss_wedge_s);
                   ( "wedged_installs",
                     Num (float_of_int r.Stress.ss_wedged_installs) );
                 ])
             rows) );
      ( "scaling",
        Num (best.Stress.ss_installs_per_s /. baseline.Stress.ss_installs_per_s)
      );
      ("wedged_confinement", Num confinement);
    ]

(* ---- obs: flight-recorder overhead, snapshot latency, alert lag ---- *)

type obs_measure = {
  ob_off_cps : float;
  ob_on_cps : float;
  ob_ratio : float;  (* median on-throughput / median off-throughput *)
  ob_snapshot_p99_ns : float;
  ob_alert_lag : int;  (* ticks from degradation onset to the alert *)
}

(* Same interleaved-pairs protocol as the telemetry section, but the
   toggle is the recorder's own gate.  Telemetry stays off throughout so
   its sampled ring (and the threaded engine's telemetry fallback) never
   enters the picture: the pair isolates exactly the always-on tallies,
   breadcrumbs and capture probes the black box adds to a check. *)
let flightrec_overhead () =
  let was_recording = Obs.Flightrec.recording () in
  let was_enabled = Telemetry.enabled () in
  Telemetry.disable ();
  let sc =
    { (Stress.default ~seed:0x0B5CA1L) with updates = 1024; kill_every = 0 }
  in
  let run_cps () =
    let r = Stress.run sc in
    float_of_int r.Stress.rp_checks /. r.Stress.rp_elapsed_s
  in
  let median l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  Obs.Flightrec.set_recording false;
  Gc.compact ();
  ignore (run_cps ());
  let offs = ref [] and ons = ref [] in
  for _ = 1 to overhead_pairs do
    Obs.Flightrec.set_recording false;
    let off = run_cps () in
    Obs.Flightrec.set_recording true;
    let on = run_cps () in
    offs := off :: !offs;
    ons := on :: !ons
  done;
  Obs.Flightrec.set_recording true;
  Obs.Flightrec.reset ();
  (* snapshot latency: trigger-to-serialized-bundle, rings populated the
     way a busy fleet would have them, caps lifted so every request
     really snapshots *)
  Obs.Flightrec.set_cap Obs.Flightrec.Supervisor_transition (-1);
  for i = 0 to 511 do
    Obs.Flightrec.note
      ~kind:Telemetry.Event.(kind_code Check_pass)
      ~ctx:(Telemetry.Event.make_ctx ~shard:(i mod 4) ())
      ~a:i ~b:(0x1000 + (4 * i)) ~c:0
  done;
  let snaps = 200 in
  let ds = Array.make snaps 0. in
  for i = 0 to snaps - 1 do
    let t0 = Telemetry.now_ns () in
    (match
       Obs.Flightrec.record_trigger Obs.Flightrec.Supervisor_transition
         ~reason:"bench: snapshot latency probe" ()
     with
    | Some b -> ignore (Obs.Json.to_string (Obs.Flightrec.bundle_json b))
    | None -> ());
    ds.(i) <- float_of_int (Telemetry.now_ns () - t0)
  done;
  Obs.Flightrec.reset_caps ();
  Obs.Flightrec.reset ();
  Array.sort compare ds;
  let p99 = ds.(min (snaps - 1) (int_of_float (0.99 *. float_of_int snaps))) in
  (* alert-detection lag: a healthy baseline fills both burn windows,
     then a sustained 50% error rate starts; count ticks until the
     multi-window alert fires.  Deterministic: the slow window's burn
     crosses 2x on the 7th degraded tick (the 6th lands a hair under —
     the budget [1 - 0.95] rounds up in binary). *)
  Obs.Slo.reset ();
  let tk =
    Obs.Slo.tracker
      (Obs.Slo.objective ~target:0.95 ~fast_window:5 ~slow_window:30 ~burn:2.0
         "bench-detection-lag")
      ~entity:"bench"
  in
  for t = 1 to 30 do
    Obs.Slo.observe tk ~good:8 ~total:8;
    ignore (Obs.Slo.evaluate tk ~tick:t)
  done;
  let lag = ref 0 in
  (try
     for k = 1 to 60 do
       Obs.Slo.observe tk ~good:4 ~total:8;
       match Obs.Slo.evaluate tk ~tick:(30 + k) with
       | Some _ ->
         lag := k;
         raise Exit
       | None -> ()
     done
   with Exit -> ());
  Obs.Slo.reset ();
  if not was_recording then Obs.Flightrec.set_recording false;
  if was_enabled then Telemetry.enable ();
  (* ratio of median throughputs, not median of per-pair ratios: a
     scheduling stall poisons whichever side it lands on, and on a
     loaded (or single-core) box enough pairs catch one that the
     per-pair median drifts; the per-side medians discard them *)
  {
    ob_off_cps = median !offs;
    ob_on_cps = median !ons;
    ob_ratio = median !ons /. median !offs;
    ob_snapshot_p99_ns = p99;
    ob_alert_lag = !lag;
  }

let obs_json ob =
  Mcfi.Benchjson.Obj
    [
      ("flightrec_off_checks_per_s", Num ob.ob_off_cps);
      ("flightrec_on_checks_per_s", Num ob.ob_on_cps);
      ("flightrec_ratio", Num ob.ob_ratio);
      ("snapshot_p99_ns", Num ob.ob_snapshot_p99_ns);
      ("alert_lag_ticks", Num (float_of_int ob.ob_alert_lag));
    ]

let obs_section () =
  let ob = flightrec_overhead () in
  Fmt.pr
    "torture check throughput, flight recorder off vs on (medians over %d \
     interleaved pairs, telemetry off on both sides):@."
    overhead_pairs;
  Fmt.pr "  recorder off  %12.0f checks/s@." ob.ob_off_cps;
  Fmt.pr "  recorder on   %12.0f checks/s@." ob.ob_on_cps;
  Fmt.pr "  ratio %.3f (budget: >= 0.95) — overhead %.1f%%@." ob.ob_ratio
    (100.0 *. (1.0 -. ob.ob_ratio));
  Fmt.pr "forensic snapshot (trigger -> serialized bundle): p99 %.0f ns@."
    ob.ob_snapshot_p99_ns;
  Fmt.pr "SLO alert-detection lag (50%% errors, 5/30 windows, 2x burn): %d \
          tick(s)@."
    ob.ob_alert_lag;
  if ob.ob_ratio < 0.95 then
    Fmt.pr "WARNING: flight-recorder overhead exceeds the 5%% budget@."

(* ---- redteam: the admitted attack surface on a fixed exemplar ---- *)

type rt_measure = {
  rt_reach : Redteam.Reach.t;  (** sabotaged exemplar's surface *)
  rt_sab_chains : int;
  rt_sab_confirmed : int;
  rt_clean_chains : int;  (** must be 0: clean programs have no chain *)
}

(* the same fixed derivation the CLI campaign uses for --seed 1,
   iteration 0, so the committed corpus artifact, the CI smoke job and
   this section all describe one exemplar *)
let redteam_measure () =
  let sp = Fuzz.Driver.spec_of (Fuzz.Driver.iter_seed 1L 0) in
  let search (r : Fuzz.Spec.rendered) =
    let build () =
      Fuzz.Oracle.build ~instrumented:true ~static:r.Fuzz.Spec.r_static
        ~dynamic:r.Fuzz.Spec.r_dynamic ()
    in
    match Redteam.Search.run ~build () with
    | Ok res -> res
    | Error m -> failwith ("redteam bench: " ^ m)
  in
  let sab = search (Redteam.Search.render_sabotaged sp) in
  let clean = search (Fuzz.Spec.render sp) in
  {
    rt_reach = sab.Redteam.Search.sr_reach;
    rt_sab_chains = List.length sab.Redteam.Search.sr_chains;
    rt_sab_confirmed =
      List.length
        (List.filter
           (fun c -> c.Redteam.Search.c_confirmed)
           sab.Redteam.Search.sr_chains);
    rt_clean_chains = List.length clean.Redteam.Search.sr_chains;
  }

let redteam_json rt =
  let re = rt.rt_reach in
  Mcfi.Benchjson.Obj
    [
      ("sites", Num (float_of_int (List.length re.Redteam.Reach.r_sites)));
      ( "corruptible_sites",
        Num (float_of_int re.Redteam.Reach.r_corruptible) );
      ("forward_edges", Num (float_of_int re.Redteam.Reach.r_forward_edges));
      ("backward_edges", Num (float_of_int re.Redteam.Reach.r_backward_edges));
      ("sabotage_chains", Num (float_of_int rt.rt_sab_chains));
      ("sabotage_confirmed", Num (float_of_int rt.rt_sab_confirmed));
      ("clean_chains", Num (float_of_int rt.rt_clean_chains));
      ( "class_histogram",
        Arr
          (List.map
             (fun (size, n) ->
               Mcfi.Benchjson.Obj
                 [
                   ("class_size", Num (float_of_int size));
                   ("classes", Num (float_of_int n));
                 ])
             re.Redteam.Reach.r_histogram) );
    ]

let redteam_section () =
  let rt = redteam_measure () in
  let re = rt.rt_reach in
  Fmt.pr "admitted attack surface, fixed exemplar (campaign seed 1, iter 0):@.";
  Fmt.pr "  sites %d (corruptible %d), forward edges %d, backward edges %d@."
    (List.length re.Redteam.Reach.r_sites)
    re.Redteam.Reach.r_corruptible re.Redteam.Reach.r_forward_edges
    re.Redteam.Reach.r_backward_edges;
  Fmt.pr "  class-size histogram:%t@." (fun ppf ->
      List.iter
        (fun (size, n) -> Fmt.pf ppf " %dx%d" n size)
        re.Redteam.Reach.r_histogram);
  Fmt.pr "  sabotaged exemplar: %d chain(s), %d confirmed@." rt.rt_sab_chains
    rt.rt_sab_confirmed;
  Fmt.pr "  clean exemplar:     %d chain(s)@." rt.rt_clean_chains;
  if rt.rt_sab_chains = 0 then
    Fmt.pr "WARNING: the search missed the grafted decoy chain@.";
  if rt.rt_clean_chains > 0 then
    Fmt.pr "WARNING: the search claims a chain in a clean program@."

(* ---- json: the machine-readable report ---- *)

let json () =
  let samples = Mcfi.Benchjson.dlopen_chain ~modules:16 ~fns:24 ~rounds:4 () in
  let tp = Stress.install_throughput ~seed:0x1DE17AL () in
  let torture =
    Mcfi.Benchjson.Obj
      [
        ("checks", Num (float_of_int tp.Stress.tp_checks));
        ("installs", Num (float_of_int tp.Stress.tp_installs));
        ("carries", Num (float_of_int tp.Stress.tp_carries));
        ( "checks_per_s",
          Num (float_of_int tp.Stress.tp_checks /. tp.Stress.tp_elapsed_s) );
        ( "installs_per_s",
          Num (float_of_int tp.Stress.tp_installs /. tp.Stress.tp_elapsed_s) );
        ( "checks_during_install_per_s",
          Num
            (float_of_int tp.Stress.tp_checks_during_install
            /. tp.Stress.tp_install_s) );
      ]
  in
  let oh = telemetry_overhead () in
  let telemetry =
    Mcfi.Benchjson.Obj
      [
        ("disabled_checks_per_s", Num oh.oh_disabled_cps);
        ("enabled_checks_per_s", Num oh.oh_enabled_cps);
        ("throughput_ratio", Num oh.oh_ratio);
        ("overhead_pct", Num (100.0 *. (1.0 -. oh.oh_ratio)));
        ("tight_check_disabled_ns", Num oh.oh_tight_disabled_ns);
        ("tight_check_enabled_ns", Num oh.oh_tight_enabled_ns);
      ]
  in
  let fz = fuzz_throughput () in
  (match fz.Fuzz.Driver.oc_failure with
  | None -> ()
  | Some rp ->
    failwith
      (Printf.sprintf "fuzz bench hit an oracle failure (seed %Ld): %s"
         rp.Fuzz.Driver.rp_seed rp.Fuzz.Driver.rp_failure.Fuzz.Oracle.f_msg));
  let fuzz =
    Mcfi.Benchjson.Obj
      [
        ("iterations", Num (float_of_int fz.Fuzz.Driver.oc_iters));
        ("elapsed_s", Num fz.Fuzz.Driver.oc_elapsed);
        ( "iters_per_s",
          Num (float_of_int fz.Fuzz.Driver.oc_iters /. fz.Fuzz.Driver.oc_elapsed)
        );
      ]
  in
  let fleet = fleet_json (fleet_run ()) in
  let shards = shards_json () in
  let dispatch = dispatch_json (dispatch_measure ()) in
  let ob = flightrec_overhead () in
  let obs = obs_json ob in
  let rt = redteam_measure () in
  let redteam = redteam_json rt in
  let report =
    Mcfi.Benchjson.report ~samples ~torture ~telemetry ~fuzz ~fleet ~shards
      ~dispatch ~obs ~redteam
  in
  let out = Mcfi.Benchjson.output_file in
  (match Mcfi.Benchjson.validate report with
  | Ok () -> ()
  | Error m -> failwith (out ^ " failed validation: " ^ m));
  let oc = open_out out in
  output_string oc (Mcfi.Benchjson.to_string report);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@." out;
  (match List.rev samples with
  | last :: _ ->
    Fmt.pr "last link: full %.3f ms, incremental %.3f ms (%.1fx)@."
      last.Mcfi.Benchjson.ls_full_ms last.Mcfi.Benchjson.ls_incr_ms
      (last.Mcfi.Benchjson.ls_full_ms /. last.Mcfi.Benchjson.ls_incr_ms)
  | [] -> ());
  Fmt.pr "telemetry: %.3f throughput ratio (%.1f%% overhead)@." oh.oh_ratio
    (100.0 *. (1.0 -. oh.oh_ratio));
  Fmt.pr
    "flight recorder: %.3f throughput ratio, snapshot p99 %.0f ns, alert lag \
     %d tick(s)@."
    ob.ob_ratio ob.ob_snapshot_p99_ns ob.ob_alert_lag

let () =
  section "table1" "Table 1: C1 violations and false-positive elimination"
    table1;
  section "table2" "Table 2: kinds of remaining violations" table2;
  section "table3" "Table 3: CFG statistics (IBs / IBTs / EQCs)" table3;
  section "fig5" "Figure 5: execution overhead, no concurrent updates" fig5;
  section "fig6" "Figure 6: execution overhead with 50 Hz update transactions"
    fig6;
  section "txmicro" "Transaction micro-benchmark (normalized check time)"
    txmicro;
  section "space" "Space overhead" space;
  section "air" "AIR metric by CFI policy" air;
  section "rop" "ROP gadget elimination" rop;
  section "cfggen" "CFG generation speed" cfggen;
  section "sandbox" "Ablation: segmentation (x86-32) vs masking (x86-64)"
    sandbox_ablation;
  section "tary" "Ablation: Tary representation" tary;
  section "torture" "Multi-domain torture throughput (not a paper figure)"
    torture;
  section "telemetry" "Telemetry overhead (enabled vs disabled)"
    telemetry_section;
  section "fuzz" "Differential-fuzzing throughput (oracle-bank iterations)"
    fuzz_section;
  section "dispatch" "Execution-engine comparison (byte vs threaded)"
    dispatch_section;
  section "fleet" "Tenant-fleet supervision under seeded chaos (not a paper \
                   figure)"
    fleet_section;
  section "obs" "Observability overhead (flight recorder, snapshots, SLO lag)"
    obs_section;
  section "redteam"
    "Admitted attack surface and in-policy chain search (not a paper figure)"
    redteam_section;
  section "json"
    ("Machine-readable report (" ^ Mcfi.Benchjson.output_file ^ ")")
    json
