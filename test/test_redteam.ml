(* Cross-oracle tests for the red-team attack synthesizer.

   The reachability map, the gadget scanner and the live table
   transaction are three independent views of the same policy; the
   properties here pin them together over fuzz-generated programs:

   - every target the reach map claims admitted at a site is accepted
     by the real {!Idtables.Tx.check}, and every tary address it does
     NOT claim is rejected (the map is neither optimistic nor
     pessimistic);
   - every gadget {!Security.Gadget.survivors} keeps starts at a
     redteam-reachable address — the gadget-elimination figure and the
     attack surface describe the same set;
   - the search finds (and confirms) the grafted decoy chain on the
     sabotaged exemplar and finds nothing on the clean one;
   - `mcfi redteam` flag parsing. *)

module Search = Redteam.Search
module Reach = Redteam.Reach
module Process = Mcfi_runtime.Process
module Machine = Mcfi_runtime.Machine
module Tables = Idtables.Tables
module Tx = Idtables.Tx
module Gadget = Security.Gadget
module Spec = Fuzz.Spec
module Driver = Fuzz.Driver
module IS = Set.Make (Int)

let fuel = 10_000_000

(* iterations under one campaign seed: enough program diversity (plain
   calls, fp arrays, setjmp, dlopen) without making the suite crawl *)
let cases = [ 0; 1; 2; 3; 4; 5 ]

let process_of (r : Spec.rendered) =
  let proc =
    Fuzz.Oracle.build ~instrumented:true ~static:r.Spec.r_static
      ~dynamic:r.Spec.r_dynamic ()
  in
  ignore (Process.run ~fuel proc);
  proc

let reach_of proc =
  match Reach.compute proc with
  | Some re -> re
  | None -> Alcotest.fail "instrumented process produced no reach map"

let with_case i f =
  let sp = Driver.spec_of (Driver.iter_seed 42L i) in
  let proc = process_of (Spec.render sp) in
  let out = f proc in
  Process.teardown proc;
  out

(* ---------- reach map <-> live transaction ---------- *)

let test_admitted_iff_tx_pass () =
  List.iter
    (fun i ->
      with_case i (fun proc ->
          let tables = Option.get (Process.tables proc) in
          let re = reach_of proc in
          let tary =
            List.fold_left
              (fun s (addr, _) -> IS.add addr s)
              IS.empty (Tables.tary_entries tables)
          in
          List.iter
            (fun (s : Reach.site) ->
              let admitted =
                Array.fold_left (fun a t -> IS.add t a) IS.empty s.Reach.s_admitted
              in
              (* soundness: every claimed target passes the live check *)
              Array.iter
                (fun target ->
                  match
                    Tx.check ~max_retries:64 tables
                      ~bary_index:s.Reach.s_slot ~target
                  with
                  | Tx.Pass -> ()
                  | Tx.Violation | Tx.Retries_exhausted ->
                    Alcotest.failf
                      "case %d slot %d: claimed-admitted 0x%x rejected by \
                       Tx.check"
                      i s.Reach.s_slot target)
                s.Reach.s_admitted;
              (* completeness: every tary address it does not claim is
                 rejected — as [Violation] (same-version class mismatch)
                 or [Retries_exhausted] (a cross-class target reads a
                 persistently skewed version pair; only [Pass] admits) *)
              IS.iter
                (fun target ->
                  if not (IS.mem target admitted) then
                    match
                      Tx.check ~max_retries:64 tables
                        ~bary_index:s.Reach.s_slot ~target
                    with
                    | Tx.Violation | Tx.Retries_exhausted -> ()
                    | Tx.Pass ->
                      Alcotest.failf
                        "case %d slot %d: unclaimed 0x%x passes Tx.check" i
                        s.Reach.s_slot target)
                tary;
              (* and [admits] agrees with the arrays it was built from *)
              Array.iter
                (fun target ->
                  Alcotest.(check bool)
                    "admits agrees" true
                    (Reach.admits re ~slot:s.Reach.s_slot ~target))
                s.Reach.s_admitted)
            re.Reach.r_sites))
    cases

(* ---------- gadget survivors <-> reachable addresses ---------- *)

let test_survivors_start_reachable () =
  List.iter
    (fun i ->
      with_case i (fun proc ->
          let m = Process.machine proc in
          let tables = Option.get (Process.tables proc) in
          let re = reach_of proc in
          let tary =
            List.fold_left
              (fun s (addr, _) -> IS.add addr s)
              IS.empty (Tables.tary_entries tables)
          in
          let reachable =
            List.fold_left
              (fun acc (s : Reach.site) ->
                Array.fold_left (fun a t -> IS.add t a) acc s.Reach.s_admitted)
              IS.empty re.Reach.r_sites
          in
          let gs =
            Gadget.scan ~base:(Machine.code_base m) (Machine.code_image m)
          in
          let kept =
            Gadget.survivors ~valid_targets:(fun a -> IS.mem a tary) gs
          in
          List.iter
            (fun (g : Gadget.t) ->
              if not (IS.mem g.Gadget.g_start reachable) then
                Alcotest.failf
                  "case %d: surviving gadget at 0x%x is not redteam-reachable"
                  i g.Gadget.g_start)
            kept))
    cases

(* ---------- the sabotage exemplar ---------- *)

let search_rendered (r : Spec.rendered) =
  match
    Search.run
      ~build:(fun () ->
        Fuzz.Oracle.build ~instrumented:true ~static:r.Spec.r_static
          ~dynamic:r.Spec.r_dynamic ())
      ()
  with
  | Ok res -> res
  | Error m -> Alcotest.failf "search: %s" m

let exemplar () = Driver.spec_of (Driver.iter_seed 1L 0)

let test_sabotage_finds_confirmed_chain () =
  let res = search_rendered (Search.render_sabotaged (exemplar ())) in
  Alcotest.(check bool)
    "found at least one chain" true
    (res.Search.sr_chains <> []);
  Alcotest.(check bool)
    "at least one chain confirmed by re-execution" true
    (List.exists (fun c -> c.Search.c_confirmed) res.Search.sr_chains);
  (* the decoy's body reaches dlopen; every chain must name a dangerous
     goal (never exit/print) *)
  List.iter
    (fun (c : Search.chain) ->
      match c.Search.c_goal with
      | Search.Gsyscall (Some n) ->
        Alcotest.(check bool)
          (Printf.sprintf "syscall %d is dangerous" n)
          true
          (n = Vmisa.Abi.sys_sbrk || n = Vmisa.Abi.sys_dlopen
         || n = Vmisa.Abi.sys_dlsym)
      | Search.Gsyscall None | Search.Gwrite _ -> ())
    res.Search.sr_chains;
  (* the chains the search reports start at corruptible sites *)
  List.iter
    (fun (c : Search.chain) ->
      match Reach.site res.Search.sr_reach c.Search.c_start with
      | None -> Alcotest.failf "chain start slot %d unknown" c.Search.c_start
      | Some s ->
        Alcotest.(check bool)
          "chain starts at a corruptible site" true
          (Reach.corruptible s.Reach.s_kind))
    res.Search.sr_chains

let test_clean_exemplar_has_no_chain () =
  let res = search_rendered (Spec.render (exemplar ())) in
  Alcotest.(check int) "no chain in the clean program" 0
    (List.length res.Search.sr_chains)

(* ---------- `mcfi redteam` flag parsing ---------- *)

let eval_mode argv =
  match
    Cmdliner.Cmd.eval_value ~argv
      (Cmdliner.Cmd.v
         (Cmdliner.Cmd.info "redteam")
         Cmdliner.Term.(const (fun m -> m) $ Redteam.Cli.mode_term))
  with
  | Ok (`Ok m) -> m
  | _ -> Alcotest.fail "flag parsing failed"

let test_cli_defaults () =
  match eval_mode [| "redteam" |] with
  | Redteam.Cli.Campaign { seed; iters; budget; corpus; sabotage; report } ->
    Alcotest.(check int64) "seed" 1L seed;
    Alcotest.(check int) "iters" 50 iters;
    Alcotest.(check (float 0.0)) "budget" 0. budget;
    Alcotest.(check string) "corpus" "corpus" corpus;
    Alcotest.(check bool) "sabotage off" false sabotage;
    Alcotest.(check (option string)) "no report" None report
  | _ -> Alcotest.fail "defaults did not parse as a campaign"

let test_cli_modes () =
  (match eval_mode [| "redteam"; "--replay"; "a.c" |] with
  | Redteam.Cli.Replay [ "a.c" ] -> ()
  | _ -> Alcotest.fail "--replay did not parse as replay");
  match
    eval_mode [| "redteam"; "--sabotage"; "--iters"; "3"; "--seed=-9" |]
  with
  | Redteam.Cli.Campaign { seed; iters; sabotage; _ } ->
    Alcotest.(check int64) "seed" (-9L) seed;
    Alcotest.(check int) "iters" 3 iters;
    Alcotest.(check bool) "sabotage on" true sabotage
  | _ -> Alcotest.fail "campaign flags did not parse"

let () =
  Alcotest.run "redteam"
    [
      ( "cross-oracle",
        [
          Alcotest.test_case "admitted iff Tx.check passes" `Slow
            test_admitted_iff_tx_pass;
          Alcotest.test_case "gadget survivors are reachable" `Slow
            test_survivors_start_reachable;
        ] );
      ( "sabotage exemplar",
        [
          Alcotest.test_case "sabotaged program yields a confirmed chain"
            `Slow test_sabotage_finds_confirmed_chain;
          Alcotest.test_case "clean program yields none" `Slow
            test_clean_exemplar_has_no_chain;
        ] );
      ( "cli",
        [
          Alcotest.test_case "defaults" `Quick test_cli_defaults;
          Alcotest.test_case "modes" `Quick test_cli_modes;
        ] );
    ]
