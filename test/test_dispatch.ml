(* Differential tests for the threaded dispatch engine's pre-decode
   invalidation.  Every scenario is a closed program of machine
   operations run once under [Byte] and once under [Threaded]; the two
   engines must produce bit-identical observations — exit reason, final
   pc, retired-step count, program output, and the committed-transfer
   trace — across code-region changes (dlopen append, rollback
   truncate), jumps into unoccupied bytes, and ID-table installs killed
   mid-flight. *)

module Machine = Mcfi_runtime.Machine
module Instr = Vmisa.Instr
module Encode = Vmisa.Encode
module Asm = Vmisa.Asm
module Abi = Vmisa.Abi
module Tables = Idtables.Tables
module Tx = Idtables.Tx

type obs = {
  o_reason : string;
  o_pc : int;
  o_steps : int;
  o_out : string;
  o_trace : string;
}

let pp_obs ppf o =
  Fmt.pf ppf "{%s pc=0x%x steps=%d out=%S trace=%s}" o.o_reason o.o_pc
    o.o_steps o.o_out o.o_trace

let obs_list = Alcotest.(list (testable pp_obs ( = )))

(* Run [m] to completion while recording the committed-transfer trace. *)
let run_obs ?(fuel = 100_000) m =
  let buf = Buffer.create 64 in
  Machine.set_transfer_hook m
    (Some (fun src dst -> Buffer.add_string buf (Printf.sprintf "%x>%x;" src dst)));
  let r = Machine.run ~fuel m in
  Machine.set_transfer_hook m None;
  {
    o_reason = Fmt.str "%a" Machine.pp_exit_reason r;
    o_pc = Machine.pc m;
    o_steps = Machine.steps m;
    o_out = Machine.output m;
    o_trace = Buffer.contents buf;
  }

(* Run [scenario] under both engines and require identical observations. *)
let both name scenario =
  let b = scenario Machine.Byte in
  let t = scenario Machine.Threaded in
  Alcotest.check obs_list name b t

let boot engine instrs =
  let m =
    Machine.create ~dispatch:engine ~code_base:Abi.code_base
      ~code_capacity:4096 ~data_words:4096 ()
  in
  ignore (Machine.append_code m (Encode.encode_all instrs));
  Machine.set_pc m Abi.code_base;
  Machine.set_brk m 16;
  m

let exit_with v = Instr.[ Mov_ri (1, v); Mov_ri (0, Abi.sys_exit); Syscall ]

(* ---- dlopen append mid-run, then a jump into the fresh region ---- *)

let test_dlopen_append_mid_run () =
  both "dlopen append" @@ fun engine ->
  let m =
    boot engine
      Instr.
        [
          Mov_ri (1, 1); (* name address: data word 1 holds 0 = "" *)
          Mov_ri (0, Abi.sys_dlopen);
          Syscall; (* r0 = base of the appended region *)
          Mov_rr (2, 0);
          Jmp_r 2; (* jump into code that did not exist at start *)
          Halt;
        ]
  in
  Machine.set_dl_handler m (fun m _num _name ->
      Machine.append_code m (Encode.encode_all (exit_with 55)));
  [ run_obs m ]

(* ---- rollback truncate + re-append: stale pre-decodes must die ---- *)

let test_truncate_reload () =
  both "truncate + reload" @@ fun engine ->
  let m = boot engine (exit_with 7) in
  let o1 = run_obs m in
  (* roll the whole image back and load different bytes at the same
     addresses; the threaded stream pre-decoded on the first run must
     not replay the old semantics *)
  Machine.truncate_code m ~code_end:Abi.code_base;
  ignore (Machine.append_code m (Encode.encode_all (exit_with 9)));
  Machine.set_pc m Abi.code_base;
  let o2 = run_obs m in
  (* a fully truncated region is unfetchable again *)
  Machine.truncate_code m ~code_end:Abi.code_base;
  Machine.set_pc m Abi.code_base;
  let o3 = run_obs m in
  [ o1; o2; o3 ]

(* ---- jump to an unoccupied byte, then occupy it and jump again ---- *)

let test_jump_to_unoccupied_byte () =
  both "unoccupied byte" @@ fun engine ->
  (* the image is a single Jmp to its own end: past [code_end], so the
     fetch faults — under both engines, at the same pc *)
  let jmp = Instr.Jmp (Abi.code_base + Instr.size (Instr.Jmp 0)) in
  let m = boot engine [ jmp ] in
  let o1 = run_obs m in
  (* appending code at exactly that address makes the same jump land on
     live bytes *)
  ignore (Machine.append_code m (Encode.encode_all (exit_with 3)));
  Machine.set_pc m Abi.code_base;
  let o2 = run_obs m in
  [ o1; o2 ]

let test_mid_instruction_gadget () =
  both "mid-instruction gadget" @@ fun engine ->
  (* jump into the immediate of a Mov_ri whose payload decodes to
     Syscall (0x03): the gadget path must pre-decode at the foreign
     offset and retire identically (cf. the byte-engine test in
     test_machine.ml) *)
  let base = Abi.code_base in
  let m =
    boot engine
      Instr.
        [
          Mov_ri (0, Abi.sys_exit); (* 10 bytes *)
          Mov_ri (1, 99); (* 10 bytes *)
          Mov_ri (2, 0x03); (* 10 bytes; immediate starts at +22 *)
          Jmp (base + 22);
          Halt;
        ]
  in
  [ run_obs m ]

(* ---- mid-install kill + recovery under a fused, hoisted check ---- *)

let check_program =
  Asm.
    [
      Mov_sym (12, "target");
      I (Bary_load (13, 0));
      I (Tary_load (11, 12));
      I (Cmp_rr (13, 11));
      Jcc_sym (Instr.Ne, "fail");
      I (Jmp_r 12);
      Label "fail";
      I Halt;
      Align 4;
      Label "target";
      I (Mov_ri (1, 42));
      I (Mov_ri (0, Abi.sys_exit));
      I Syscall;
    ]

let test_mid_install_kill_and_recovery () =
  both "mid-install kill" @@ fun engine ->
  let prog =
    match Asm.assemble ~base:Abi.code_base check_program with
    | Ok p -> p
    | Error e -> Alcotest.failf "assemble: %a" Asm.pp_error e
  in
  let target = Hashtbl.find prog.Asm.labels "target" in
  let tables =
    Tables.create ~code_base:Abi.code_base ~capacity:4096 ~bary_slots:4 ()
  in
  let (_ : int) = Tx.update tables ~tary:[ (target, 5) ] ~bary:[ (0, 5) ] in
  let m =
    Machine.create ~tables ~dispatch:engine ~code_base:Abi.code_base
      ~code_capacity:4096 ~data_words:4096 ()
  in
  ignore (Machine.append_code m prog.Asm.image);
  Machine.set_brk m 16;
  Machine.set_pc m Abi.code_base;
  (* healthy tables: the check passes and the program exits — under
     Threaded this fuses the check+Jmp_r and caches the hoisted pair *)
  let o1 = run_obs m in
  (* kill an update after its first Tary publish: the sequence word is
     left odd and the tables torn.  The hoisted cache must not replay
     its stale Pass — both engines re-read the torn tables and agree. *)
  Faults.arm (Faults.Plan.At { point = Faults.Plan.Nth_tary_write; hit = 1 });
  (match Tx.update tables ~tary:[ (target, 7) ] ~bary:[ (0, 7) ] with
  | (_ : int) -> Alcotest.fail "armed kill never fired"
  | exception Faults.Injected _ -> ());
  Faults.disarm ();
  Machine.set_pc m Abi.code_base;
  let o2 = run_obs m in
  (* journal-assisted recovery redoes the torn install; the check passes
     again at the new version under both engines *)
  Alcotest.(check bool) "recover redoes" true (Tx.recover tables);
  Machine.set_pc m Abi.code_base;
  let o3 = run_obs m in
  Machine.release m;
  [ o1; o2; o3 ]

(* ---- attacker interleaving: the red-team search is engine-blind ---- *)

(* A synthesized in-policy chain embeds an attacker plan that fires
   between specific instruction retirements; the machine pins attacker
   interleaving by stepping through the byte path whenever a hook is
   installed, so the search — benign reference run, walk, confirmation
   re-execution — must produce the identical chain under [Byte] and
   [Threaded] dispatch. *)
let chain_fingerprint (c : Redteam.Search.chain) =
  Fmt.str "%d|%s|%s|0x%x|%b|%s" c.Redteam.Search.c_start
    (String.concat ";"
       (List.map
          (fun (h : Redteam.Search.hop) ->
            Printf.sprintf "%d>%x%s" h.Redteam.Search.h_slot
              h.Redteam.Search.h_target
              (if h.Redteam.Search.h_diverted then "!" else ""))
          c.Redteam.Search.c_hops))
    (Redteam.Search.goal_name c.Redteam.Search.c_goal)
    c.Redteam.Search.c_goal_pc c.Redteam.Search.c_confirmed
    c.Redteam.Search.c_exit

let test_redteam_chain_engine_blind () =
  let sp = Fuzz.Driver.spec_of (Fuzz.Driver.iter_seed 1L 0) in
  let r = Redteam.Search.render_sabotaged sp in
  let search dispatch =
    match
      Redteam.Search.run
        ~build:(fun () ->
          Fuzz.Oracle.build ~dispatch ~instrumented:true
            ~static:r.Fuzz.Spec.r_static ~dynamic:r.Fuzz.Spec.r_dynamic ())
        ()
    with
    | Ok res -> res
    | Error m -> Alcotest.failf "search under %s: %s"
                   (match dispatch with
                   | Machine.Byte -> "byte"
                   | Machine.Threaded -> "threaded")
                   m
  in
  let b = search Machine.Byte in
  let t = search Machine.Threaded in
  Alcotest.(check string)
    "benign run exits identically"
    (Fmt.str "%a" Machine.pp_exit_reason b.Redteam.Search.sr_exit)
    (Fmt.str "%a" Machine.pp_exit_reason t.Redteam.Search.sr_exit);
  Alcotest.(check bool) "byte search finds a chain" true
    (b.Redteam.Search.sr_chains <> []);
  Alcotest.(check (list string))
    "identical chains (slots, hops, goal, confirmation) under both engines"
    (List.map chain_fingerprint b.Redteam.Search.sr_chains)
    (List.map chain_fingerprint t.Redteam.Search.sr_chains);
  Alcotest.(check bool) "the chain confirms under threaded dispatch" true
    (List.exists
       (fun c -> c.Redteam.Search.c_confirmed)
       t.Redteam.Search.sr_chains)

let () =
  Alcotest.run "dispatch"
    [
      ( "invalidation",
        [
          Alcotest.test_case "dlopen append mid-run" `Quick
            test_dlopen_append_mid_run;
          Alcotest.test_case "truncate + reload" `Quick test_truncate_reload;
          Alcotest.test_case "jump to unoccupied byte" `Quick
            test_jump_to_unoccupied_byte;
          Alcotest.test_case "mid-instruction gadget" `Quick
            test_mid_instruction_gadget;
        ] );
      ( "tables",
        [
          Alcotest.test_case "mid-install kill + recovery" `Quick
            test_mid_install_kill_and_recovery;
        ] );
      ( "redteam",
        [
          Alcotest.test_case "synthesized chain is engine-blind" `Slow
            test_redteam_chain_engine_blind;
        ] );
    ]
