(* Tests for the security-evaluation tools: the gadget scanner, the AIR
   metric and the baseline policies. *)

module Gadget = Security.Gadget
module Air = Security.Air
module Policies = Security.Policies
module Instr = Vmisa.Instr
module Encode = Vmisa.Encode

(* ---------- gadget scanner ---------- *)

let image_of instrs = Encode.encode_all instrs

let test_finds_trivial_gadget () =
  let image = image_of [ Instr.Pop 0; Instr.Ret ] in
  let gs = Gadget.scan ~base:0 image in
  Alcotest.(check bool) "found pop;ret" true
    (List.exists (fun g -> g.Gadget.g_instrs = [ Instr.Pop 0; Instr.Ret ]) gs)

let test_finds_mid_instruction_gadget () =
  (* a Mov_ri whose immediate bytes decode to something ending in Ret:
     immediate 0x02 = the Ret opcode in the low byte *)
  let image = image_of [ Instr.Mov_ri (0, 0x02); Instr.Halt ] in
  let gs = Gadget.scan ~base:0 image in
  (* scanning from inside the immediate must find a gadget the intended
     stream does not contain *)
  Alcotest.(check bool) "unaligned gadget exists" true
    (List.exists (fun g -> g.Gadget.g_start > 0) gs)

let test_no_gadget_without_branch () =
  (* careful operand choice: no byte may alias the Ret/Call_r/Jmp_r
     opcodes (that aliasing is real and covered by the next test) *)
  let image = image_of [ Instr.Nop; Instr.Mov_rr (3, 4); Instr.Halt ] in
  Alcotest.(check int) "none" 0 (List.length (Gadget.scan ~base:0 image))

let test_halt_stops_gadget () =
  (* a Halt between start and the branch poisons the gadget *)
  let image = image_of [ Instr.Halt; Instr.Ret ] in
  let gs = Gadget.scan ~base:0 image in
  Alcotest.(check bool) "no gadget crosses halt" true
    (List.for_all (fun g -> g.Gadget.g_instrs = [ Instr.Ret ]) gs)

let test_max_len_bounds () =
  let image =
    image_of
      [ Instr.Nop; Instr.Nop; Instr.Nop; Instr.Nop; Instr.Ret ]
  in
  let short = Gadget.scan ~max_len:2 ~base:0 image in
  let long = Gadget.scan ~max_len:8 ~base:0 image in
  Alcotest.(check bool) "longer window finds more" true
    (List.length long > List.length short)

let test_count_unique () =
  let image = image_of [ Instr.Nop; Instr.Ret; Instr.Nop; Instr.Ret ] in
  let gs = Gadget.scan ~base:0 image in
  (* [nop;ret] appears twice but counts once; [ret] likewise *)
  Alcotest.(check int) "unique" 2 (Gadget.count_unique gs)

let test_survivors_filter () =
  let gs =
    [
      { Gadget.g_start = 0x100; g_instrs = [ Instr.Ret ] };
      { Gadget.g_start = 0x102; g_instrs = [ Instr.Ret ] };
      { Gadget.g_start = 0x104; g_instrs = [ Instr.Ret ] };
    ]
  in
  let valid = fun a -> a = 0x100 in
  let s = Gadget.survivors ~valid_targets:valid gs in
  Alcotest.(check int) "only aligned+valid" 1 (List.length s);
  Alcotest.(check int) "rate" 66
    (int_of_float (Gadget.elimination_rate ~total:3 ~surviving:1))

let prop_scan_total =
  QCheck.Test.make ~name:"scan is total on random bytes" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 80))
    (fun s ->
      let gs = Gadget.scan ~base:0 s in
      List.for_all
        (fun g ->
          g.Gadget.g_start >= 0
          && g.Gadget.g_start < String.length s
          && Instr.is_indirect_branch
               (List.nth g.Gadget.g_instrs (List.length g.Gadget.g_instrs - 1)))
        gs)

(* ---------- AIR and policies ---------- *)

let sample_input = Testlib.sample_input

let test_air_ordering () =
  let input, code_bytes = sample_input () in
  let air p = Air.compute p ~input ~code_bytes in
  let none = air Policies.No_protection in
  let chunk = air (Policies.Chunk 16) in
  let bincfi = air Policies.Bincfi in
  let mcfi = air Policies.Mcfi in
  Alcotest.(check (float 0.0001)) "none is 0" 0.0 none;
  Alcotest.(check bool) "chunk > none" true (chunk > none);
  Alcotest.(check bool) "binCFI > chunk" true (bincfi > chunk);
  Alcotest.(check bool) "MCFI >= binCFI" true (mcfi >= bincfi);
  Alcotest.(check bool) "MCFI < 1" true (mcfi < 1.0)

let test_air_chunk_math () =
  let input, code_bytes = sample_input () in
  (* chunk policy: every branch reaches code_bytes/n targets *)
  let air = Air.compute (Policies.Chunk 32) ~input ~code_bytes in
  let expected =
    1.0
    -. (float_of_int ((code_bytes + 31) / 32) /. float_of_int code_bytes)
  in
  Alcotest.(check (float 0.0001)) "chunk32 formula" expected air

let test_coarse_tables_two_classes () =
  let input, _ = sample_input () in
  let tary, bary = Policies.coarse_tables input in
  let classes = List.sort_uniq compare (List.map snd tary) in
  Alcotest.(check bool) "at most two target classes" true
    (List.length classes <= 2);
  (* every call-like site gets class 0 *)
  Array.iteri
    (fun slot site ->
      let cls = List.assoc slot bary in
      match site with
      | Cfg.Cfggen.Sicall _ | Cfg.Cfggen.Sitail _ | Cfg.Cfggen.Splt _ ->
        Alcotest.(check int) "call class" 0 cls
      | Cfg.Cfggen.Sreturn _ | Cfg.Cfggen.Sjumptable _ | Cfg.Cfggen.Slongjmp _
        -> Alcotest.(check int) "return class" 1 cls)
    input.Cfg.Cfggen.sites

let test_mcfi_beats_coarse_on_suite () =
  (* across the whole suite, MCFI's AIR is never below binCFI's *)
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let proc =
        Mcfi.Pipeline.build_process ~sources:[ (b.name, b.source) ] ()
      in
      let input = Mcfi_runtime.Process.cfg_input proc in
      let code_bytes =
        Mcfi_runtime.Machine.code_end (Mcfi_runtime.Process.machine proc)
        - Vmisa.Abi.code_base
      in
      let air p = Air.compute p ~input ~code_bytes in
      if air Policies.Mcfi < air Policies.Bincfi then
        Alcotest.failf "%s: MCFI AIR below binCFI" b.name)
    Suite.Programs.all

let () =
  Alcotest.run "security"
    [
      ( "gadgets",
        [
          Alcotest.test_case "trivial gadget" `Quick test_finds_trivial_gadget;
          Alcotest.test_case "mid-instruction gadget" `Quick
            test_finds_mid_instruction_gadget;
          Alcotest.test_case "no branch, no gadget" `Quick
            test_no_gadget_without_branch;
          Alcotest.test_case "halt poisons" `Quick test_halt_stops_gadget;
          Alcotest.test_case "max_len bounds" `Quick test_max_len_bounds;
          Alcotest.test_case "count unique" `Quick test_count_unique;
          Alcotest.test_case "survivors" `Quick test_survivors_filter;
        ] );
      ("gadget props", [ QCheck_alcotest.to_alcotest prop_scan_total ]);
      ( "air & policies",
        [
          Alcotest.test_case "ordering" `Quick test_air_ordering;
          Alcotest.test_case "chunk math" `Quick test_air_chunk_math;
          Alcotest.test_case "coarse two classes" `Quick
            test_coarse_tables_two_classes;
          Alcotest.test_case "MCFI >= binCFI on suite" `Slow
            test_mcfi_beats_coarse_on_suite;
        ] );
    ]
