(* The fault-injection differential oracle.

   For every trigger point in [Faults.Plan], a fault is injected into the
   dynamic-linking protocol and the oracle asserts one of exactly two
   outcomes: the operation raised cleanly and the process state (code,
   tables, symbol maps, data break) equals the pre-operation snapshot, or
   the operation completed and the state equals the no-fault run's.  Never
   a third.  On top of the sweep: torn-update detection and recovery at
   the transaction level, the bounded-retry escalation policy, and
   regression coverage for the pre-existing unhappy paths (each must leave
   the process usable). *)

module Process = Mcfi_runtime.Process
module Machine = Mcfi_runtime.Machine
module Linker = Mcfi_runtime.Linker
module Tables = Idtables.Tables
module Tx = Idtables.Tx
module Id = Idtables.Id
module Objfile = Mcfi_compiler.Objfile
module Plan = Faults.Plan
module Instr = Vmisa.Instr
module Asm = Vmisa.Asm

(* ------------------------------------------------------------------ *)
(* scenario: an exe that dlopens a plugin through the PLT, so the plugin
   load resolves a pending GOT slot between the two update phases *)

let main_src =
  {|
extern int plugin_val(int x);
int main() {
  if (dlopen("plugin") != 0) { print_str("no"); return 1; }
  print_int(plugin_val(21));
  return 0;
}|}

let plugin_src = {|
int plugin_val(int x) { return x * 2; }
|}

let plugin_obj =
  lazy
    (Mcfi.Pipeline.instrument
       (Mcfi.Pipeline.compile_module ~name:"plugin"
          (Suite.Libc.header ^ plugin_src)))

let mk_proc () =
  Mcfi.Pipeline.build_process ~sources:[ ("main", main_src) ]
    ~dynamic:[ ("plugin", plugin_src) ] ()

(* ------------------------------------------------------------------ *)
(* the observable process state the oracle compares *)

type obs = {
  o_code_end : int;
  o_brk : int;
  o_version : int option;
  o_code_size : int option;
  o_tary : (int * int) list;
  o_bary : (int * int) list;
  o_code_syms : (string * int) list;
  o_data_syms : (string * int) list;
  o_loaded : string list;
  o_updates : int;
}

let observe proc =
  let m = Process.machine proc in
  let tb = Process.tables proc in
  {
    o_code_end = Machine.code_end m;
    o_brk = Machine.brk m;
    o_version = Option.map Tables.version tb;
    o_code_size = Option.map Tables.code_size tb;
    o_tary = (match tb with None -> [] | Some t -> Tables.tary_entries t);
    o_bary = (match tb with None -> [] | Some t -> Tables.bary_entries t);
    o_code_syms = Process.code_symbol_bindings proc;
    o_data_syms = Process.data_symbol_bindings proc;
    o_loaded = Process.loaded_names proc;
    o_updates = Process.updates proc;
  }

let check_obs name a b =
  if a <> b then
    Alcotest.failf
      "%s: states differ (code_end 0x%x vs 0x%x, brk %d vs %d, version %s \
       vs %s, %d vs %d tary entries, %d vs %d code syms, modules [%s] vs \
       [%s])"
      name a.o_code_end b.o_code_end a.o_brk b.o_brk
      (match a.o_version with None -> "-" | Some v -> string_of_int v)
      (match b.o_version with None -> "-" | Some v -> string_of_int v)
      (List.length a.o_tary) (List.length b.o_tary)
      (List.length a.o_code_syms)
      (List.length b.o_code_syms)
      (String.concat "," a.o_loaded)
      (String.concat "," b.o_loaded)

(* the no-fault reference: state before and after a clean plugin load *)
let reference =
  lazy
    (let proc = mk_proc () in
     let pre = observe proc in
     Process.load proc (Lazy.force plugin_obj);
     (pre, observe proc))

(* ------------------------------------------------------------------ *)
(* the sweep *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

type outcome = Completed | Raised of exn

let try_load proc obj =
  match Process.load proc obj with () -> Completed | exception e -> Raised e

let sweep_oracle name plan =
  let pre_ref, ok_ref = Lazy.force reference in
  let proc = mk_proc () in
  check_obs (name ^ ": fresh process matches reference") (observe proc) pre_ref;
  Faults.arm plan;
  let r = try_load proc (Lazy.force plugin_obj) in
  Faults.disarm ();
  match r with
  | Raised (Faults.Injected _) ->
    check_obs (name ^ ": rolled back to pre-state") (observe proc) pre_ref;
    (* the process must be fully usable: the same load now succeeds and
       converges on the exact no-fault state *)
    Process.load proc (Lazy.force plugin_obj);
    check_obs (name ^ ": reload reaches no-fault state") (observe proc) ok_ref
  | Raised e ->
    Alcotest.failf "%s: unexpected exception %s" name (Printexc.to_string e)
  | Completed ->
    (* the plan never fired (e.g. fewer hook crossings than [hit]) — then
       the run must be indistinguishable from the no-fault one *)
    check_obs (name ^ ": completed = no-fault state") (observe proc) ok_ref

let sweep_cases =
  [
    ("nth-tary-write hit 1", Plan.At { point = Plan.Nth_tary_write; hit = 1 });
    ("nth-tary-write hit 7", Plan.At { point = Plan.Nth_tary_write; hit = 7 });
    ( "between-tary-and-bary",
      Plan.At { point = Plan.Between_tary_and_bary; hit = 1 } );
    ("after-code-append hit 1", Plan.At { point = Plan.After_code_append; hit = 1 });
    ("after-code-append hit 2", Plan.At { point = Plan.After_code_append; hit = 2 });
    ("during-verification", Plan.At { point = Plan.During_verification; hit = 1 });
    ("during-got-update", Plan.At { point = Plan.During_got_update; hit = 1 });
  ]

let test_sweep () =
  List.iter (fun (name, plan) -> sweep_oracle name plan) sweep_cases

let test_random_sweep () =
  let pre_ref, ok_ref = Lazy.force reference in
  for seed = 1 to 25 do
    let proc = mk_proc () in
    Faults.arm (Plan.Random { seed = Int64.of_int seed; one_in = 4 });
    let r = try_load proc (Lazy.force plugin_obj) in
    Faults.disarm ();
    let name = Printf.sprintf "random seed %d" seed in
    match r with
    | Raised (Faults.Injected _) ->
      check_obs (name ^ ": rolled back") (observe proc) pre_ref;
      Process.load proc (Lazy.force plugin_obj);
      check_obs (name ^ ": reload converges") (observe proc) ok_ref
    | Raised e ->
      Alcotest.failf "%s: unexpected exception %s" name (Printexc.to_string e)
    | Completed -> check_obs (name ^ ": clean run") (observe proc) ok_ref
  done

(* the dlopen syscall path: an injected fault makes dlopen report failure
   and the running process is otherwise untouched *)
let run_with_plan plan =
  let proc = mk_proc () in
  let pre = observe proc in
  Faults.arm plan;
  let reason = Process.run proc in
  Faults.disarm ();
  (proc, pre, reason, Machine.output (Process.machine proc))

let test_registry_lookup_fault () =
  let proc, pre, reason, out =
    run_with_plan (Plan.At { point = Plan.Registry_lookup; hit = 1 })
  in
  (match reason with
  | Machine.Exited 1 -> ()
  | r -> Alcotest.failf "expected exit 1, got %a" Machine.pp_exit_reason r);
  Alcotest.(check string) "program saw the failure" "no" out;
  check_obs "registry-lookup: process unchanged" (observe proc) pre

let test_dlopen_injected_fault_is_noop () =
  let proc, pre, reason, out =
    run_with_plan (Plan.At { point = Plan.During_verification; hit = 1 })
  in
  (match reason with
  | Machine.Exited 1 -> ()
  | r -> Alcotest.failf "expected exit 1, got %a" Machine.pp_exit_reason r);
  Alcotest.(check string) "program saw the failure" "no" out;
  check_obs "dlopen fault: process unchanged" (observe proc) pre

let test_dlopen_clean_run () =
  (* control: without a plan the same program loads the plugin and runs *)
  let proc, _, reason, out = run_with_plan (Plan.At { point = Plan.Link_merge; hit = 99 }) in
  (match reason with
  | Machine.Exited 0 -> ()
  | r -> Alcotest.failf "expected exit 0, got %a" Machine.pp_exit_reason r);
  Alcotest.(check string) "output" "42" out;
  ignore proc

(* ------------------------------------------------------------------ *)
(* Process.load failure paths: verifier rejection pins the acceptance
   criterion fields (code_end, table version, symbol map) explicitly *)

(* replace the first committing indirect jump with a naked Ret — the
   verifier must reject the module *)
let drop_commit (obj : Objfile.t) =
  let replaced = ref false in
  let items =
    List.map
      (fun item ->
        match item with
        | Asm.I (Instr.Jmp_r _) when not !replaced ->
          replaced := true;
          Asm.I Instr.Ret
        | item -> item)
      obj.Objfile.o_items
  in
  { obj with Objfile.o_items = items }

let test_verifier_rejection_rolls_back () =
  let pre_ref, ok_ref = Lazy.force reference in
  let proc = mk_proc () in
  let code_end0 = Machine.code_end (Process.machine proc) in
  let version0 = Option.map Tables.version (Process.tables proc) in
  let syms0 = Process.code_symbol_bindings proc in
  let bad = drop_commit (Lazy.force plugin_obj) in
  (match Process.load proc bad with
  | () -> Alcotest.fail "expected a verifier rejection"
  | exception Process.Error msg ->
    Alcotest.(check bool)
      "rejection mentions verification" true
      (contains msg "verif"));
  Alcotest.(check int) "code_end unchanged" code_end0
    (Machine.code_end (Process.machine proc));
  Alcotest.(check bool)
    "table version unchanged" true
    (Option.map Tables.version (Process.tables proc) = version0);
  Alcotest.(check bool)
    "symbol map unchanged" true
    (Process.code_symbol_bindings proc = syms0);
  check_obs "verifier rejection: full state" (observe proc) pre_ref;
  (* the genuine module still loads afterwards *)
  Process.load proc (Lazy.force plugin_obj);
  check_obs "verifier rejection: recovery" (observe proc) ok_ref

(* ------------------------------------------------------------------ *)
(* torn-update detection and recovery at the transaction level *)

let mk_tables () = Tables.create ~code_base:0x1000 ~capacity:256 ~bary_slots:8 ()

let tear_between_phases t =
  (* CFG1 is live; die after CFG2's Tary phase, before any Bary write *)
  ignore (Tx.update t ~tary:[ (0x1000, 0) ] ~bary:[ (0, 0) ]);
  match
    Faults.with_plan
      (Plan.At { point = Plan.Between_tary_and_bary; hit = 1 })
      (fun () -> Tx.update t ~tary:[ (0x1004, 1) ] ~bary:[ (0, 1) ])
  with
  | _ -> Alcotest.fail "expected the injected fault"
  | exception Faults.Injected _ -> ()

let test_torn_update_never_passes () =
  let t = mk_tables () in
  tear_between_phases t;
  (* mixed-version tables: bounded checks retry and exhaust, never pass *)
  Alcotest.(check bool) "old CFG target does not pass" true
    (Tx.check t ~max_retries:50 ~bary_index:0 ~target:0x1000 <> Tx.Pass);
  Alcotest.(check bool) "new CFG target does not pass yet" true
    (Tx.check t ~max_retries:50 ~bary_index:0 ~target:0x1004 <> Tx.Pass);
  Alcotest.(check bool) "journal marks the torn update" true
    (Tables.journal t <> None)

let test_torn_update_explicit_recover () =
  let t = mk_tables () in
  tear_between_phases t;
  let before = (Faults.Stats.snapshot ()).Faults.Stats.recoveries in
  Alcotest.(check bool) "recover reports work done" true (Tx.recover t);
  Alcotest.(check int) "recovery counted" (before + 1)
    (Faults.Stats.snapshot ()).Faults.Stats.recoveries;
  Alcotest.(check bool) "journal cleared" true (Tables.journal t = None);
  Alcotest.(check bool) "idempotent" false (Tx.recover t);
  (* the interrupted install is now complete: the new CFG answers checks *)
  Alcotest.(check bool) "new CFG passes" true
    (Tx.check t ~bary_index:0 ~target:0x1004 = Tx.Pass);
  Alcotest.(check bool) "old CFG target violates" true
    (Tx.check t ~bary_index:0 ~target:0x1000 = Tx.Violation)

let test_torn_update_recovered_by_next_updater () =
  let t = mk_tables () in
  tear_between_phases t;
  let v_torn = Tables.version t in
  let before = (Faults.Stats.snapshot ()).Faults.Stats.recoveries in
  (* the next updater redoes the torn install, then applies its own *)
  let v3 = Tx.update t ~tary:[ (0x1008, 2) ] ~bary:[ (0, 2) ] in
  Alcotest.(check int) "recovery ran first" (before + 1)
    (Faults.Stats.snapshot ()).Faults.Stats.recoveries;
  Alcotest.(check int) "fresh version after the redone one" (v_torn + 1) v3;
  Alcotest.(check bool) "journal cleared" true (Tables.journal t = None);
  Alcotest.(check bool) "latest CFG passes" true
    (Tx.check t ~bary_index:0 ~target:0x1008 = Tx.Pass);
  Alcotest.(check bool) "torn CFG target violates" true
    (Tx.check t ~bary_index:0 ~target:0x1004 = Tx.Violation)

let test_torn_mid_tary_recovers () =
  (* die inside phase 1, with only part of the Tary image published *)
  let t = mk_tables () in
  ignore (Tx.update t ~tary:[ (0x1000, 0); (0x1010, 0) ] ~bary:[ (0, 0) ]);
  (match
     Faults.with_plan
       (Plan.At { point = Plan.Nth_tary_write; hit = 3 })
       (fun () ->
         Tx.update t ~tary:[ (0x1004, 1); (0x1020, 1) ] ~bary:[ (0, 1) ])
   with
  | _ -> Alcotest.fail "expected the injected fault"
  | exception Faults.Injected _ -> ());
  (* no Bary write happened, so the old CFG is still the live one: a
     not-yet-overwritten old slot may keep passing (0x1010), while slots
     the dead updater already rewrote fail closed — new-CFG targets skew
     (0x1004) and removed targets violate (0x1000).  What must never
     happen is a new-CFG edge passing before recovery. *)
  Alcotest.(check bool) "surviving old-CFG target still passes" true
    (Tx.check t ~max_retries:50 ~bary_index:0 ~target:0x1010 = Tx.Pass);
  Alcotest.(check bool) "no new-CFG target passes before recovery" true
    (List.for_all
       (fun target ->
         Tx.check t ~max_retries:50 ~bary_index:0 ~target <> Tx.Pass)
       [ 0x1000; 0x1004; 0x1020 ]);
  Alcotest.(check bool) "recovered" true (Tx.recover t);
  Alcotest.(check bool) "new CFG passes after recovery" true
    (Tx.check t ~bary_index:0 ~target:0x1004 = Tx.Pass
    && Tx.check t ~bary_index:0 ~target:0x1020 = Tx.Pass)

(* ------------------------------------------------------------------ *)
(* the bounded-retry escalation policy *)

let skew_without_journal t =
  (* manual skew with no journal: an updater stuck alive, not dead *)
  ignore (Tx.update t ~tary:[ (0x1000, 0) ] ~bary:[ (0, 0) ]);
  let stale_bid = Tables.bary_read t 0 in
  Tables.set_version t (Tables.version t + 1);
  Tables.tary_set t 0x1000 (Id.pack ~ecn:0 ~version:(Tables.version t));
  Tables.bary_set t 0 stale_bid

let test_escalation_fail_check () =
  let t = mk_tables () in
  skew_without_journal t;
  Alcotest.(check bool) "fail-check surfaces exhaustion" true
    (Tx.check t ~max_retries:5 ~escalation:Tx.Fail_check ~bary_index:0
       ~target:0x1000
    = Tx.Retries_exhausted)

let test_escalation_halt_process () =
  let t = mk_tables () in
  skew_without_journal t;
  Alcotest.(check bool) "halt-process fails closed" true
    (Tx.check t ~max_retries:5 ~escalation:Tx.Halt_process ~bary_index:0
       ~target:0x1000
    = Tx.Violation)

let test_escalation_wait_recovers_torn_update () =
  let t = mk_tables () in
  tear_between_phases t;
  (* waiting takes the update lock, redoes the dead updater's journal and
     re-attempts: the check must then pass on the new CFG *)
  Alcotest.(check bool) "wait-for-updater completes the update" true
    (Tx.check t ~max_retries:5 ~escalation:Tx.Wait_for_updater ~bary_index:0
       ~target:0x1004
    = Tx.Pass);
  Alcotest.(check bool) "journal cleared by the wait" true
    (Tables.journal t = None)

let test_escalation_wait_without_updater_exhausts () =
  let t = mk_tables () in
  skew_without_journal t;
  (* no journal to redo and the skew persists: one extra bounded round,
     then exhaustion — no infinite loop *)
  Alcotest.(check bool) "wait without journal exhausts" true
    (Tx.check t ~max_retries:5 ~escalation:Tx.Wait_for_updater ~bary_index:0
       ~target:0x1000
    = Tx.Retries_exhausted)

let test_retry_counter_counts () =
  let t = mk_tables () in
  skew_without_journal t;
  let before = (Faults.Stats.snapshot ()).Faults.Stats.retries in
  ignore (Tx.check t ~max_retries:7 ~bary_index:0 ~target:0x1000);
  Alcotest.(check int) "7 retries counted" (before + 7)
    (Faults.Stats.snapshot ()).Faults.Stats.retries

let test_escalation_outcome_counters () =
  (* each escalation outcome bumps its own robustness counter *)
  let snap () = Faults.Stats.snapshot () in
  let t = mk_tables () in
  skew_without_journal t;
  let before = snap () in
  ignore
    (Tx.check t ~max_retries:5 ~escalation:Tx.Halt_process ~bary_index:0
       ~target:0x1000);
  Alcotest.(check int) "halt counted"
    (before.Faults.Stats.halts + 1)
    (snap ()).Faults.Stats.halts;
  let before = snap () in
  ignore
    (Tx.check t ~max_retries:5 ~escalation:Tx.Fail_check ~bary_index:0
       ~target:0x1000);
  Alcotest.(check int) "failed check counted"
    (before.Faults.Stats.failed_checks + 1)
    (snap ()).Faults.Stats.failed_checks;
  let t2 = mk_tables () in
  tear_between_phases t2;
  let before = snap () in
  ignore
    (Tx.check t2 ~max_retries:5 ~escalation:Tx.Wait_for_updater ~bary_index:0
       ~target:0x1004);
  Alcotest.(check int) "wait counted"
    (before.Faults.Stats.waits + 1)
    (snap ()).Faults.Stats.waits

let test_rollback_counter_counts () =
  let proc = mk_proc () in
  let before = (Faults.Stats.snapshot ()).Faults.Stats.rollbacks in
  (match
     Faults.with_plan
       (Plan.At { point = Plan.During_verification; hit = 1 })
       (fun () -> Process.load proc (Lazy.force plugin_obj))
   with
  | () -> Alcotest.fail "expected the injected fault"
  | exception Faults.Injected _ -> ());
  Alcotest.(check int) "rollback counted" (before + 1)
    (Faults.Stats.snapshot ()).Faults.Stats.rollbacks

(* ------------------------------------------------------------------ *)
(* pre-existing unhappy paths: each must leave the process usable *)

let test_add_plt_address_taken_rejected () =
  (* taking the address of a dynamically deferred symbol is unsupported:
     the PLT synthesis must say so, not emit a bad module *)
  let addr_taken_main =
    {|
typedef int (*cb)(int);
extern int plugin_val(int x);
int main() { cb p; p = plugin_val; return p(2); }
|}
  in
  (match
     Mcfi.Pipeline.link_executable
       ~sources:[ ("main", addr_taken_main) ]
       ~dynamic:[ ("plugin", plugin_src) ]
       ()
   with
  | _ -> Alcotest.fail "expected add_plt to reject"
  | exception Mcfi.Pipeline.Error msg ->
    Alcotest.(check bool)
      "error names the deferred symbol" true (contains msg "deferred"));
  (* statically linking the same program instead still works: nothing was
     corrupted by the failed attempt *)
  let proc =
    Mcfi.Pipeline.build_process
      ~sources:[ ("main", addr_taken_main); ("plugin", plugin_src) ]
      ()
  in
  match Process.run proc with
  | Machine.Exited 4 -> ()
  | r -> Alcotest.failf "static link run: %a" Machine.pp_exit_reason r

let test_mode_mismatch_rolls_back () =
  let pre_ref, _ = Lazy.force reference in
  let proc = mk_proc () in
  let plain =
    (* compiled but never instrumented: the mode check must fire *)
    Mcfi.Pipeline.compile_module ~name:"plain" (Suite.Libc.header ^ plugin_src)
  in
  (match Process.load proc plain with
  | () -> Alcotest.fail "expected a mode mismatch"
  | exception Process.Error _ -> ());
  check_obs "mode mismatch: process unchanged" (observe proc) pre_ref;
  (* still usable end to end: the real dlopen path completes *)
  (match Process.run proc with
  | Machine.Exited 0 -> ()
  | r -> Alcotest.failf "after mismatch: %a" Machine.pp_exit_reason r);
  Alcotest.(check string) "output" "42"
    (Machine.output (Process.machine proc))

let test_machine_append_overflow () =
  let m = Machine.create ~code_base:0x1000 ~code_capacity:16 ~data_words:64 () in
  ignore (Machine.append_code m (String.make 8 '\x01'));
  (match Machine.append_code m (String.make 16 '\x01') with
  | _ -> Alcotest.fail "expected capacity overflow"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "code_end unchanged" (0x1000 + 8) (Machine.code_end m);
  (* the machine still accepts code that fits *)
  ignore (Machine.append_code m (String.make 8 '\x01'));
  Alcotest.(check int) "full now" (0x1000 + 16) (Machine.code_end m)

let test_load_capacity_overflow_rolls_back () =
  let exe =
    Mcfi.Pipeline.link_executable ~sources:[ ("main", main_src) ]
      ~dynamic:[ ("plugin", plugin_src) ]
      ()
  in
  let registry name =
    if name = "plugin" then Some (Lazy.force plugin_obj) else None
  in
  (* measure the exe, then rebuild with capacity for it and nothing more *)
  let probe = Process.create ~registry () in
  Process.load probe exe;
  let exe_size =
    Machine.code_end (Process.machine probe) - Vmisa.Abi.code_base
  in
  let proc = Process.create ~registry ~code_capacity:exe_size () in
  Process.load proc exe;
  let pre = observe proc in
  (match Process.load proc (Lazy.force plugin_obj) with
  | () -> Alcotest.fail "expected capacity overflow"
  | exception Invalid_argument _ -> ());
  check_obs "capacity overflow: rolled back" (observe proc) pre;
  (* the running program sees a clean dlopen failure and finishes *)
  (match Process.run proc with
  | Machine.Exited 1 -> ()
  | r -> Alcotest.failf "after overflow: %a" Machine.pp_exit_reason r);
  Alcotest.(check string) "program saw the failure" "no"
    (Machine.output (Process.machine proc))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "sweep",
        [
          Alcotest.test_case "every trigger point" `Quick test_sweep;
          Alcotest.test_case "random plans" `Quick test_random_sweep;
          Alcotest.test_case "registry lookup" `Quick
            test_registry_lookup_fault;
          Alcotest.test_case "dlopen fault is a no-op" `Quick
            test_dlopen_injected_fault_is_noop;
          Alcotest.test_case "unfired plan = clean run" `Quick
            test_dlopen_clean_run;
        ] );
      ( "load rollback",
        [
          Alcotest.test_case "verifier rejection" `Quick
            test_verifier_rejection_rolls_back;
          Alcotest.test_case "rollback counter" `Quick
            test_rollback_counter_counts;
        ] );
      ( "torn updates",
        [
          Alcotest.test_case "never pass on torn tables" `Quick
            test_torn_update_never_passes;
          Alcotest.test_case "explicit recover" `Quick
            test_torn_update_explicit_recover;
          Alcotest.test_case "next updater recovers" `Quick
            test_torn_update_recovered_by_next_updater;
          Alcotest.test_case "mid-Tary tear" `Quick test_torn_mid_tary_recovers;
        ] );
      ( "escalation",
        [
          Alcotest.test_case "fail-check" `Quick test_escalation_fail_check;
          Alcotest.test_case "halt-process" `Quick
            test_escalation_halt_process;
          Alcotest.test_case "wait recovers torn update" `Quick
            test_escalation_wait_recovers_torn_update;
          Alcotest.test_case "wait without updater exhausts" `Quick
            test_escalation_wait_without_updater_exhausts;
          Alcotest.test_case "retry counter" `Quick test_retry_counter_counts;
          Alcotest.test_case "outcome counters" `Quick
            test_escalation_outcome_counters;
        ] );
      ( "pre-existing unhappy paths",
        [
          Alcotest.test_case "add_plt address-taken deferred" `Quick
            test_add_plt_address_taken_rejected;
          Alcotest.test_case "instrumented/plain mismatch" `Quick
            test_mode_mismatch_rolls_back;
          Alcotest.test_case "append_code overflow" `Quick
            test_machine_append_overflow;
          Alcotest.test_case "load capacity overflow" `Quick
            test_load_capacity_overflow_rolls_back;
        ] );
    ]
