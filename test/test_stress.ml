(* The torture harness (lib/stress) and the epoch-quiescence machinery.

   The short torture case here is the tier-1 acceptance gate: ≥ 4 checker
   domains against 2 updater domains for more than 2^14 updates — past
   the ABA version wall, so it only completes if epoch-based quiescence
   works — with periodic mid-install updater kills whose torn installs
   must be redone by concurrent lock holders, and every check outcome
   validated by the epoch-history oracle.  Failures print the seed: replay
   with `mcfi torture --seed S`. *)

open Idtables

(* --- the epoch registry, single-domain semantics --- *)

let fresh () = Tables.create ~code_base:0 ~capacity:16 ~bary_slots:1 ()

let test_epoch_registry () =
  let t = fresh () in
  Tables.count_update t;
  Alcotest.(check bool) "empty registry never declares" false
    (Tables.quiesce_attempt t);
  let r = Tables.register_reader t in
  Alcotest.(check bool) "fresh reader counts as advanced" true
    (Tables.quiesce_attempt t);
  Alcotest.(check int) "counter reset" 0 (Tables.updates_since_quiesce t);
  (* an install snapshots the reader's epoch; until the reader crosses a
     branch boundary there is no quiescence evidence *)
  let (_ : int) = Tx.update t ~tary:[] ~bary:[ (0, 1) ] in
  Alcotest.(check bool) "stale reader gates quiescence" false
    (Tables.quiesce_attempt t);
  Tables.reader_quiescent r;
  Alcotest.(check bool) "advanced reader releases it" true
    (Tables.quiesce_attempt t);
  (* an offline reader (blocked in a long syscall) does not gate *)
  let (_ : int) = Tx.update t ~tary:[] ~bary:[ (0, 1) ] in
  Tables.set_reader_online r false;
  Alcotest.(check bool) "offline reader ignored" true
    (Tables.quiesce_attempt t);
  Tables.set_reader_online r true;
  Tables.unregister_reader t r;
  Alcotest.(check int) "registry empty after unregister" 0
    (Tables.registered_readers t);
  let (_ : int) = Tx.update t ~tary:[] ~bary:[ (0, 1) ] in
  Alcotest.(check bool) "empty registry never declares (again)" false
    (Tables.quiesce_attempt t)

(* A live reader that keeps crossing branch boundaries lets an update
   storm sail past the 2^14 version wall. *)
let test_epoch_storm_survives_wall () =
  let t = fresh () in
  let r = Tables.register_reader t in
  for _ = 1 to Id.max_version + 10 do
    Tables.reader_quiescent r;
    let (_ : int) = Tx.update t ~tary:[ (0, 1) ] ~bary:[ (0, 1) ] in
    ()
  done;
  Alcotest.(check bool) "quiesced along the way" true
    (Tables.quiesce_events t > 0)

(* A registered reader that never advances is indistinguishable from a
   check transaction still running since the last install: the storm must
   refuse at the wall rather than wrap the version space under it. *)
let test_stale_reader_hits_wall () =
  let t = fresh () in
  let (_ : Tables.reader) = Tables.register_reader t in
  let (_ : int) = Tx.update t ~tary:[] ~bary:[ (0, 1) ] in
  Alcotest.check_raises "refuses to wrap" Tx.Version_space_exhausted
    (fun () ->
      for _ = 1 to Id.max_version + 1 do
        let (_ : int) = Tx.update t ~tary:[] ~bary:[ (0, 1) ] in
        ()
      done)

(* --- the torture harness --- *)

let check_no_anomalies r =
  match r.Stress.rp_anomalies with
  | [] -> ()
  | l ->
    Alcotest.failf "oracle anomalies (replay: mcfi torture --seed %Ld):@.%a"
      r.Stress.rp_scenario.Stress.seed
      Fmt.(list ~sep:Fmt.cut Stress.pp_anomaly)
      l

let test_torture_acceptance () =
  let sc = Stress.default ~seed:0x5EED5L in
  let r = Stress.run sc in
  check_no_anomalies r;
  Alcotest.(check int) "every install (incl. redone kills) completed"
    (sc.Stress.updates + 1) r.Stress.rp_installs;
  Alcotest.(check bool) "mid-install kills injected" true
    (r.Stress.rp_kills > 0);
  Alcotest.(check bool) "torn installs recovered concurrently" true
    (r.Stress.rp_recoveries > 0);
  Alcotest.(check bool) "epoch quiescence declared" true
    (r.Stress.rp_quiesces > 0);
  Alcotest.(check bool) "checkers exercised both outcomes" true
    (r.Stress.rp_passes > 0 && r.Stress.rp_violations > 0)

let storm_scenario seed =
  {
    (Stress.generate ~seed) with
    Stress.updates = 0;
    checkers = 2;
    loader_loads = 8;
    loader_fault_one_in = 3;
  }

let test_loader_storm () =
  let r = Stress.run (storm_scenario 0xA11CEL) in
  check_no_anomalies r;
  Alcotest.(check bool) "some loads succeeded" true (r.Stress.rp_loads_ok > 0);
  Alcotest.(check bool) "some loads failed (duplicates, faults)" true
    (r.Stress.rp_loads_failed > 0);
  Alcotest.(check bool) "failed loads rolled back" true
    (r.Stress.rp_rollbacks > 0);
  Alcotest.(check bool) "checkers probed throughout" true
    (r.Stress.rp_checks > 0)

(* --- sharded torture: every STM variant under the same oracle --- *)

let sharded_scenario ~stm ~shards seed =
  {
    (Stress.generate ~seed) with
    Stress.updates = 800;
    checkers = 2;
    updaters = 2;
    kill_every = 9;
    reclaimer = true;
    loader_loads = 0;
    shards;
    stm;
  }

let test_sharded_torture () =
  List.iter
    (fun stm ->
      let r = Stress.run (sharded_scenario ~stm ~shards:2 0xB0A7L) in
      check_no_anomalies r;
      Alcotest.(check int)
        (Printf.sprintf "per-shard tallies under %s" (Idtables.Stm.name stm))
        2
        (Array.length r.Stress.rp_shard_installs);
      Array.iteri
        (fun i n ->
          if n < 1 then
            Alcotest.failf "shard %d completed no installs under %s" i
              (Idtables.Stm.name stm))
        r.Stress.rp_shard_installs;
      Alcotest.(check int)
        "shard tallies sum to the total" r.Stress.rp_installs
        (Array.fold_left ( + ) 0 r.Stress.rp_shard_installs);
      Alcotest.(check bool) "shard-scoped kills injected" true
        (r.Stress.rp_kills > 0))
    Idtables.Stm.all

let test_shard_scaling_smoke () =
  let s =
    Stress.shard_scaling ~updaters:2 ~duration_s:0.05 ~wedge_s:0.05 ~shards:2
      ~seed:0x5CA1EL ()
  in
  Alcotest.(check int) "shards" 2 s.Stress.ss_shards;
  Alcotest.(check bool) "installs completed" true (s.Stress.ss_installs > 0);
  Alcotest.(check bool) "rate finite" true
    (Float.is_finite s.Stress.ss_installs_per_s);
  Alcotest.(check bool) "wedged tally sane" true
    (s.Stress.ss_wedged_installs >= 0)

(* Scenario generation and the workload it drives are functions of the
   seed alone (the schedule is not, but the oracle judges any schedule) —
   the replay story of `mcfi torture --seed S`. *)
let test_deterministic_replay () =
  Alcotest.(check bool) "generate is a function of the seed" true
    (Stress.generate ~seed:42L = Stress.generate ~seed:42L);
  let r1 = Stress.run (storm_scenario 0xD15EA5EL) in
  let r2 = Stress.run (storm_scenario 0xD15EA5EL) in
  check_no_anomalies r1;
  check_no_anomalies r2;
  Alcotest.(check (pair int int))
    "load outcomes replay exactly"
    (r1.Stress.rp_loads_ok, r1.Stress.rp_loads_failed)
    (r2.Stress.rp_loads_ok, r2.Stress.rp_loads_failed)

let () =
  Alcotest.run "stress"
    [
      ( "epochs",
        [
          Alcotest.test_case "registry semantics" `Quick test_epoch_registry;
          Alcotest.test_case "storm survives the version wall" `Quick
            test_epoch_storm_survives_wall;
          Alcotest.test_case "stale reader still hits the wall" `Quick
            test_stale_reader_hits_wall;
        ] );
      ( "torture",
        [
          Alcotest.test_case "multi-domain acceptance run" `Quick
            test_torture_acceptance;
          Alcotest.test_case "loader storm" `Quick test_loader_storm;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
        ] );
      ( "shards",
        [
          Alcotest.test_case "sharded torture, all STM variants" `Quick
            test_sharded_torture;
          Alcotest.test_case "shard-scaling smoke" `Quick
            test_shard_scaling_smoke;
        ] );
    ]
