(* Shared build-program → run-pipeline plumbing for the test suite.

   The same few helpers used to be copied into test_pipeline,
   test_security and test_incremental (and would have been copied again
   into test_fuzz); they live here once instead. *)

module Process = Mcfi_runtime.Process
module Machine = Mcfi_runtime.Machine

(* Build a process from named sources with the pipeline defaults. *)
let build ?instrumented ?(dynamic = []) sources =
  Mcfi.Pipeline.build_process ?instrumented ~sources ~dynamic ()

(* Assert that [thunk] raises [Pipeline.Error] with a message starting
   with [prefix]. *)
let fails_with_prefix prefix thunk =
  match thunk () with
  | _ -> Alcotest.failf "expected an error starting with %S" prefix
  | exception Mcfi.Pipeline.Error msg ->
    if
      not
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix)
    then Alcotest.failf "unexpected message: %s" msg

(* Compile and instrument a single module to a loadable object. *)
let obj_of name src =
  Mcfi.Pipeline.instrument (Mcfi.Pipeline.compile_module ~name src)

(* Assert that a process's incremental CFG state matches a from-scratch
   regeneration. *)
let check_oracle proc what =
  match Process.oracle_check proc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "oracle %s: %s" what m

(* Run to completion and return the output; any exit other than
   [Exited 0] is a test failure. *)
let run_output ?fuel what proc =
  match Process.run ?fuel proc with
  | Machine.Exited 0 -> Machine.output (Process.machine proc)
  | r -> Alcotest.failf "%s: %a" what Machine.pp_exit_reason r

(* A small fixed program with two indirect-call classes, plus its CFG
   input and code size — the shared fixture for AIR/policy tests. *)
let sample_input () =
  let proc =
    build
      [ ( "p",
          {|
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int pick(char *s, int x) { return x; }
int (*ops[2])(int) = { inc, dec };
int (*other)(char *, int) = pick;
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 4; i = i + 1) { s = s + ops[i % 2](i); }
  return s - 8;
}|}
        );
      ]
  in
  let input = Process.cfg_input proc in
  let code_bytes =
    Machine.code_end (Process.machine proc) - Vmisa.Abi.code_base
  in
  (input, code_bytes)
