(* Sharded ID tables (lib/idtables/shards.ml): module-home routing with
   the hashed fallback, fail-closed checks on shards that never saw an
   install, the cross-shard commit/recovery rule (a death mid-sequence
   is indistinguishable from a crash just before the remaining shards),
   per-shard journal independence, shard-confined quiescence, and the
   kill-confinement acceptance property: a torn shard wedges only
   itself while every other shard keeps serving checks and completing
   installs. *)

open Idtables

let outcome = Alcotest.testable Fmt.(any "outcome") ( = )

let mk ?(stm = Stm.Tml) ?(shards = 4) () =
  Shards.create ~stm ~shards ~code_base:0x1000 ~capacity:256 ~bary_slots:8 ()

(* One tiny CFG per shard: slot 0 reaches 0x1010 under a per-shard class. *)
let seed_shard ?tag shs ~shard =
  Shards.update ?tag shs ~shard
    ~tary:[ (0x1010, 3 + shard) ]
    ~bary:[ (0, 3 + shard) ]

let seed_all ?tag shs =
  for i = 0 to Shards.count shs - 1 do
    ignore (seed_shard ?tag shs ~shard:i)
  done

(* ---- placement ---- *)

let test_home_routing () =
  let shs = mk ~shards:4 () in
  (* the hashed fallback is deterministic, in range, and not collapsed
     onto a single shard *)
  let homes = List.init 64 (fun m -> Shards.home shs ~m) in
  List.iter
    (fun h ->
      if h < 0 || h >= 4 then Alcotest.failf "home %d out of range" h)
    homes;
  Alcotest.(check (list int))
    "fallback is deterministic" homes
    (List.init 64 (fun m -> Shards.home shs ~m));
  let shs2 = mk ~shards:4 () in
  Alcotest.(check (list int))
    "fallback is instance-independent" homes
    (List.init 64 (fun m -> Shards.home shs2 ~m));
  Alcotest.(check bool) "fallback spreads modules" true
    (List.sort_uniq compare homes |> List.length > 1);
  (* pinning overrides the hash, for that module only *)
  let m = 17 in
  let other = (Shards.home shs ~m + 1) mod 4 in
  Shards.set_home shs ~m ~shard:other;
  Alcotest.(check int) "pin wins" other (Shards.home shs ~m);
  Alcotest.(check int)
    "neighbours keep the hash" (Shards.home shs2 ~m:18)
    (Shards.home shs ~m:18);
  match Shards.set_home shs ~m:0 ~shard:4 with
  | () -> Alcotest.fail "pinned an out-of-range shard"
  | exception Invalid_argument _ -> ()

(* ---- the empty shard ---- *)

let test_empty_shard_fails_closed () =
  let shs = mk ~shards:2 () in
  ignore (seed_shard shs ~shard:0);
  (* a populated slot probing a target its shard does not cover reads
     Id.invalid there and fails closed — the foreign-target rule *)
  Alcotest.check outcome "foreign target violates" Tx.Violation
    (Shards.check shs ~shard:0 ~bary_index:0 ~target:0x1050);
  Alcotest.(check bool) "foreign target denied on the fast path" false
    (Shards.check_fast shs ~shard:0 ~bary_index:0 ~target:0x1050);
  (* shard 1 never saw an install: checks against it resolve immediately
     (an uninstrumented slot; no version skew to chase) rather than
     wedging, and the shard is pristine — unversioned, untorn, and
     trivially quiescent *)
  Alcotest.check outcome "empty shard resolves immediately" Tx.Pass
    (Shards.check ~max_retries:0 shs ~shard:1 ~bary_index:0 ~target:0x1010);
  Alcotest.(check int) "empty shard never versioned" 0
    (Shards.version shs ~shard:1);
  Alcotest.(check bool) "empty shard not torn" false (Shards.torn shs ~shard:1);
  Alcotest.(check bool) "empty shard trivially quiescent" true
    (Shards.quiesce_attempt shs ~shard:1);
  (* and the populated shard is unaffected by the probes *)
  Alcotest.check outcome "populated shard passes" Tx.Pass
    (Shards.check shs ~shard:0 ~bary_index:0 ~target:0x1010)

(* ---- cross-shard commits ---- *)

let versions shs =
  Array.init (Shards.count shs) (fun i -> Shards.version shs ~shard:i)

let test_cross_shard_kill_between_commits () =
  let shs = mk ~shards:3 () in
  seed_all shs;
  let before = versions shs in
  let parts =
    List.init 3 (fun i -> (i, ([ (0x1020, 9) ], [ (1, 9) ])))
  in
  (* die after shards 0 and 1 committed, just before shard 2's
     transaction begins *)
  Faults.arm
    (Faults.Plan.At_shard
       { shard = 2; point = Faults.Plan.Between_shard_commits; hit = 1 });
  (match Shards.update_multi_full ~tag:9 shs parts with
  | (_ : (int * int) list) -> Alcotest.fail "armed kill never fired"
  | exception Faults.Injected _ -> ());
  Faults.disarm ();
  (* earlier shards: committed, journals clear, new CFG live *)
  List.iter
    (fun shard ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d committed" shard)
        (before.(shard) + 1)
        (Shards.version shs ~shard);
      Alcotest.(check bool)
        (Printf.sprintf "shard %d journal clear" shard)
        false (Shards.torn shs ~shard);
      Alcotest.check outcome
        (Printf.sprintf "shard %d serves the new CFG" shard)
        Tx.Pass
        (Shards.check shs ~shard ~bary_index:1 ~target:0x1020))
    [ 0; 1 ];
  (* the unreached shard: untouched, as if its update was never
     submitted — old CFG live, nothing to recover *)
  Alcotest.(check int) "shard 2 untouched" before.(2)
    (Shards.version shs ~shard:2);
  Alcotest.(check bool) "shard 2 not torn" false (Shards.torn shs ~shard:2);
  Alcotest.check outcome "shard 2 still serves the old CFG" Tx.Pass
    (Shards.check shs ~shard:2 ~bary_index:0 ~target:0x1010);
  Alcotest.(check int) "nothing to recover anywhere" 0 (Shards.recover_all shs);
  (* the caller re-submits the unreached suffix, exactly as after a
     process crash *)
  let (_ : (int * int) list) =
    Shards.update_multi_full ~tag:9 shs [ (2, ([ (0x1020, 9) ], [ (1, 9) ])) ]
  in
  Alcotest.check outcome "resubmitted suffix lands" Tx.Pass
    (Shards.check shs ~shard:2 ~bary_index:1 ~target:0x1020)

let test_update_multi_rejects_bad_parts () =
  let shs = mk ~shards:2 () in
  seed_all shs;
  let before = versions shs in
  let dup = [ (0, Shards.part ()); (0, Shards.part ()) ] in
  (match Shards.update_multi shs dup with
  | (_ : (int * int) list) -> Alcotest.fail "accepted a duplicate shard"
  | exception Invalid_argument _ -> ());
  (match Shards.update_multi shs [ (5, Shards.part ()) ] with
  | (_ : (int * int) list) -> Alcotest.fail "accepted an out-of-range shard"
  | exception Invalid_argument _ -> ());
  (* validation happens before any commit: no shard moved *)
  Alcotest.(check bool) "no partial commit" true (versions shs = before)

(* ---- per-shard journal independence ---- *)

let tear shard shs =
  (* leave shard [shard] torn: killed after its first Tary publish *)
  Faults.arm
    (Faults.Plan.At_shard
       { shard; point = Faults.Plan.Nth_tary_write; hit = 1 });
  (match
     Shards.update ~tag:77 shs ~shard ~tary:[ (0x1030, 11) ] ~bary:[ (2, 11) ]
   with
  | (_ : int) -> Alcotest.fail "armed kill never fired"
  | exception Faults.Injected _ -> ());
  Faults.disarm ()

let test_torn_shard_confined () =
  let shs = mk ~shards:3 () in
  seed_all shs;
  tear 0 shs;
  Alcotest.(check bool) "shard 0 torn" true (Shards.torn shs ~shard:0);
  (* an updater landing on a different shard commits normally and does
     not touch shard 0's journal — recovery is the torn shard's own *)
  let (_ : int) = seed_shard shs ~shard:1 in
  Alcotest.(check bool) "other shard's updater leaves the journal" true
    (Shards.torn shs ~shard:0);
  Alcotest.(check bool) "other shard not torn" false (Shards.torn shs ~shard:1);
  (* shard 0's own next updater redoes the torn install first *)
  let (_ : int) = seed_shard shs ~shard:0 in
  Alcotest.(check bool) "own updater consumed the journal" false
    (Shards.torn shs ~shard:0);
  Alcotest.(check int) "recover_all finds nothing" 0 (Shards.recover_all shs)

let test_recover_all_sweeps () =
  let shs = mk ~shards:4 () in
  seed_all shs;
  tear 1 shs;
  tear 3 shs;
  Alcotest.(check int) "both torn shards redone" 2 (Shards.recover_all shs);
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "shard %d clean" i)
      false (Shards.torn shs ~shard:i)
  done;
  (* the redone installs completed: the torn CFG is live on both *)
  List.iter
    (fun shard ->
      Alcotest.check outcome "torn install completed" Tx.Pass
        (Shards.check shs ~shard ~bary_index:2 ~target:0x1030))
    [ 1; 3 ]

(* ---- shard-confined quiescence ---- *)

let test_wedged_reader_blocks_one_shard () =
  let shs = mk ~shards:2 () in
  seed_all shs;
  (* a registered reader that never crosses a branch boundary: shard 0
     cannot declare quiescence after its next install... *)
  let rd = Shards.register_reader shs ~shard:0 in
  ignore (seed_shard shs ~shard:0);
  let rd1 = Shards.register_reader shs ~shard:1 in
  ignore (seed_shard shs ~shard:1);
  Tables.reader_quiescent rd1;
  Alcotest.(check bool) "wedged shard refuses" false
    (Shards.quiesce_attempt shs ~shard:0);
  (* ...but only shard 0: the live reader's shard declares on its own *)
  Alcotest.(check (array bool))
    "verdicts are per shard" [| false; true |] (Shards.quiescent_shards shs);
  (* tearing the corpse down releases the shard *)
  Shards.unregister_reader shs ~shard:0 rd;
  ignore (seed_shard shs ~shard:0);
  let rd0 = Shards.register_reader shs ~shard:0 in
  ignore (seed_shard shs ~shard:0);
  Tables.reader_quiescent rd0;
  Alcotest.(check bool) "released shard declares" true
    (Shards.quiesce_attempt shs ~shard:0);
  Shards.unregister_reader shs ~shard:0 rd0;
  Shards.unregister_reader shs ~shard:1 rd1

(* ---- kill confinement, the acceptance property ---- *)

let test_kill_confinement () =
  (* while shard 0 sits torn and unrecovered, every other shard must
     keep serving checks and completing installs *)
  List.iter
    (fun stm ->
      let shs = mk ~stm ~shards:4 () in
      seed_all shs;
      tear 0 shs;
      Alcotest.(check bool) "shard 0 torn" true (Shards.torn shs ~shard:0);
      for round = 1 to 25 do
        for shard = 1 to 3 do
          let ecn = 3 + shard in
          let (_ : int) =
            Shards.update shs ~shard
              ~tary:[ (0x1010, ecn); (0x1040, 12) ]
              ~bary:[ (0, ecn); (3, 12) ]
          in
          Alcotest.check outcome
            (Printf.sprintf "round %d: shard %d serves checks" round shard)
            Tx.Pass
            (Shards.check shs ~shard ~bary_index:0 ~target:0x1010)
        done
      done;
      (* the torn shard never resolves its skew to a wrong verdict: the
         kill fired before the first slot write, so the only justifiable
         Pass is the old CFG's own edge (the snapshot-validating
         variants refuse even that while the sequence word sits odd) *)
      (match
         Shards.check ~max_retries:4 shs ~shard:0 ~bary_index:0 ~target:0x1010
       with
      | Tx.Pass when stm = Stm.Tml -> ()
      | Tx.Retries_exhausted -> ()
      | o ->
        Alcotest.failf "torn shard check under %s resolved to %s" (Stm.name stm)
          (match o with
          | Tx.Pass -> "Pass"
          | Tx.Violation -> "Violation"
          | Tx.Retries_exhausted -> assert false));
      (* and recovery — shard 0's own — restores service *)
      Alcotest.(check bool) "recovered" true (Shards.recover shs ~shard:0);
      Alcotest.check outcome "restored" Tx.Pass
        (Shards.check shs ~shard:0 ~bary_index:2 ~target:0x1030))
    Stm.all

let () =
  Alcotest.run "shards"
    [
      ( "placement",
        [ Alcotest.test_case "home routing" `Quick test_home_routing ] );
      ( "empty shard",
        [
          Alcotest.test_case "fails closed" `Quick test_empty_shard_fails_closed;
        ] );
      ( "cross-shard",
        [
          Alcotest.test_case "kill between commits" `Quick
            test_cross_shard_kill_between_commits;
          Alcotest.test_case "bad parts rejected before commit" `Quick
            test_update_multi_rejects_bad_parts;
        ] );
      ( "journals",
        [
          Alcotest.test_case "torn shard confined to its own journal" `Quick
            test_torn_shard_confined;
          Alcotest.test_case "recover_all sweeps every shard" `Quick
            test_recover_all_sweeps;
        ] );
      ( "quiescence",
        [
          Alcotest.test_case "wedged reader blocks one shard" `Quick
            test_wedged_reader_blocks_one_shard;
        ] );
      ( "confinement",
        [
          Alcotest.test_case "torn shard sheds only itself" `Quick
            test_kill_confinement;
        ] );
    ]
