(* Integration tests: the whole toolchain + runtime, including separate
   compilation, static and dynamic linking, the benchmark suite under
   both regimes, and the security scenarios of paper §8.3. *)

module Machine = Mcfi_runtime.Machine
module Process = Mcfi_runtime.Process
module Linker = Mcfi_runtime.Linker
module Tables = Idtables.Tables

let run ?(instrumented = true) ?tco ?dynamic src =
  Mcfi.Pipeline.run_source ~instrumented ?tco ?dynamic src

let check_exit name reason expected =
  match reason with
  | Machine.Exited n -> Alcotest.(check int) name expected n
  | r -> Alcotest.failf "%s: %a" name Machine.pp_exit_reason r

(* ---------- the suite under both regimes ---------- *)

let suite_cases =
  List.map
    (fun (b : Suite.Programs.benchmark) ->
      Alcotest.test_case b.name `Slow (fun () ->
          let r_plain, out_plain = run ~instrumented:false b.source in
          let r_mcfi, out_mcfi = run ~instrumented:true b.source in
          check_exit (b.name ^ " plain") r_plain b.expected_exit;
          check_exit (b.name ^ " mcfi") r_mcfi b.expected_exit;
          Alcotest.(check string) (b.name ^ " same output") out_plain out_mcfi;
          Alcotest.(check bool)
            (b.name ^ " nonempty output")
            true (String.length out_mcfi > 0)))
    Suite.Programs.all

let suite_tco_cases =
  (* the x86-64 flavour must behave identically *)
  List.map
    (fun (b : Suite.Programs.benchmark) ->
      Alcotest.test_case (b.name ^ " tco") `Slow (fun () ->
          let _, out_plain = run ~instrumented:false b.source in
          let r, out = run ~instrumented:true ~tco:true b.source in
          check_exit b.name r b.expected_exit;
          Alcotest.(check string) (b.name ^ " tco output") out_plain out))
    Suite.Programs.all

(* ---------- separate compilation & linking ---------- *)

let test_separate_compilation () =
  (* modules compiled and instrumented independently, linked after *)
  let m1 = {|
typedef int (*cb)(int);
int use(cb f, int x) { return f(x); }
|} in
  let m2 = {|
typedef int (*cb)(int);
extern int use(cb f, int x);
int triple(int x) { return 3 * x; }
int main() { print_int(use(triple, 14)); return 0; }
|} in
  let proc =
    Mcfi.Pipeline.build_process ~sources:[ ("m1", m1); ("m2", m2) ] ()
  in
  let reason = Process.run proc in
  check_exit "separate compilation" reason 0;
  Alcotest.(check string) "output" "42" (Machine.output (Process.machine proc))

let test_duplicate_symbol_rejected () =
  let m = {|int f() { return 1; } int main() { return f(); }|} in
  let m2 = {|int f() { return 2; }|} in
  Alcotest.(check bool) "duplicate f" true
    (match Mcfi.Pipeline.build_process ~sources:[ ("a", m); ("b", m2) ] () with
    | _ -> false
    | exception Mcfi.Pipeline.Error _ -> true)

let test_undefined_symbol_rejected () =
  let m = {|extern int missing(int); int main() { return missing(1); }|} in
  Alcotest.(check bool) "missing symbol" true
    (match Mcfi.Pipeline.build_process ~sources:[ ("a", m) ] () with
    | _ -> false
    | exception Mcfi.Pipeline.Error _ -> true)

(* ---------- dynamic linking ---------- *)

let plugin_src =
  {|
extern int printf(char *fmt, ...);
int plugin_val(int x) { return x * 2; }
|}

let test_dlopen_binds_plt () =
  let main_src =
    {|
extern int plugin_val(int x);
int main() {
  if (dlopen("plugin") != 0) { return 1; }
  print_int(plugin_val(21));
  return 0;
}|}
  in
  let r, out = run ~dynamic:[ ("plugin", plugin_src) ] main_src in
  check_exit "dlopen" r 0;
  Alcotest.(check string) "output" "42" out

let test_unbound_plt_halts () =
  (* calling through the PLT before dlopen reads GOT slot 0: the Tary
     lookup fails and the check halts *)
  let main_src =
    {|
extern int plugin_val(int x);
int main() { return plugin_val(21); }|}
  in
  match run ~dynamic:[ ("plugin", plugin_src) ] main_src with
  | Machine.Cfi_halt, _ -> ()
  | r, _ -> Alcotest.failf "expected cfi-halt, got %a" Machine.pp_exit_reason r

let test_dlopen_unknown_module_fails () =
  let main_src =
    {|
int main() {
  if (dlopen("nonexistent") != 0) { print_str("no"); return 0; }
  return 1;
}|}
  in
  let r, out = run main_src in
  check_exit "unknown module" r 0;
  Alcotest.(check string) "output" "no" out

let test_dlopen_updates_version () =
  let main_src =
    {|
extern int plugin_val(int x);
int before;
int main() {
  if (dlopen("plugin") != 0) { return 1; }
  return plugin_val(21) - 42;
}|}
  in
  let proc =
    Mcfi.Pipeline.build_process ~sources:[ ("main", main_src) ]
      ~dynamic:[ ("plugin", plugin_src) ]
      ()
  in
  let tables = Option.get (Process.tables proc) in
  let v_before = Tables.version tables in
  let reason = Process.run proc in
  check_exit "dlopen run" reason 0;
  Alcotest.(check bool) "version bumped" true (Tables.version tables > v_before);
  Alcotest.(check int) "two update transactions" 2 (Process.updates proc)

let test_dlsym () =
  let main_src =
    {|
int target(int x) { return x + 5; }
int (*keep)(int) = target;
int main() {
  int addr = __syscall(5, "target");
  int (*f)(int) = (int (*)(int)) addr;  /* a K2-style cast, but types match */
  return f(37) - 42;
}|}
  in
  let r, _ = run main_src in
  check_exit "dlsym" r 0

(* ---------- the K1 broken-CFG behaviour ---------- *)

let test_k1_call_halts_under_mcfi () =
  (* a function pointer initialized with an incompatibly typed function:
     type matching generates no edge, so the call halts under MCFI while
     running fine unprotected (the paper's K1-fixed cases are exactly the
     ones that must be patched with wrappers) *)
  let src =
    {|
int op(int a, int b) { return a + b; }
int main() {
  int (*f)(int) = (int (*)(int)) op;  /* K1: incompatible */
  return f(1) - f(1);
}|}
  in
  let r_plain, _ = run ~instrumented:false src in
  (match r_plain with
  | Machine.Exited 0 -> ()
  | r -> Alcotest.failf "plain run: %a" Machine.pp_exit_reason r);
  match run ~instrumented:true src with
  | Machine.Cfi_halt, _ -> ()
  | r, _ ->
    Alcotest.failf "expected cfi-halt under MCFI, got %a"
      Machine.pp_exit_reason r

let test_k1_fixed_by_wrapper_runs () =
  let src =
    {|
int op(int a, int b) { return a + b; }
int op_wrapper(int a) { return op(a, a); }  /* the paper's fix */
int main() {
  int (*f)(int) = op_wrapper;
  return f(21) - 42;
}|}
  in
  let r, _ = run ~instrumented:true src in
  check_exit "wrapper" r 0

(* ---------- machine unit behaviour ---------- *)

let test_machine_stack_discipline () =
  let src =
    {|
int depth(int n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
int main() { return depth(1000) - 1000; }|}
  in
  let r, _ = run ~instrumented:true src in
  check_exit "deep stack" r 0

let test_machine_stack_overflow_faults () =
  let src = {|
int forever(int n) { return 1 + forever(n + 1); }
int main() { return forever(0); }|} in
  match run ~instrumented:false src with
  | Machine.Fault _, _ -> ()
  | r, _ -> Alcotest.failf "expected fault, got %a" Machine.pp_exit_reason r

let test_machine_fuel () =
  let src = {|int main() { while (1) { } return 0; }|} in
  match Mcfi.Pipeline.run_source ~instrumented:false ~fuel:10_000 src with
  | Machine.Out_of_fuel, _ -> ()
  | r, _ -> Alcotest.failf "expected out-of-fuel, got %a" Machine.pp_exit_reason r

(* ---------- attacks (paper §8.3) ---------- *)

let outcome_of regime outcomes =
  List.find (fun (o : Security.Attacks.outcome) -> o.regime = regime) outcomes

let test_stack_smash () =
  let outcomes = Security.Attacks.stack_smash () in
  (match outcome_of "plain" outcomes with
  | { reason = Machine.Exited 99; output = "HIJACKED"; _ } -> ()
  | o -> Alcotest.failf "plain: %a" Security.Attacks.pp_outcome o);
  match outcome_of "MCFI" outcomes with
  | { reason = Machine.Cfi_halt; _ } -> ()
  | o -> Alcotest.failf "mcfi: %a" Security.Attacks.pp_outcome o

let test_fptr_hijack () =
  let outcomes = Security.Attacks.fptr_hijack () in
  (* coarse-grained CFI lets the execve hijack through; MCFI halts *)
  (match outcome_of "coarse-CFI" outcomes with
  | { reason = Machine.Exited 66; _ } -> ()
  | o -> Alcotest.failf "coarse: %a" Security.Attacks.pp_outcome o);
  match outcome_of "MCFI" outcomes with
  | { reason = Machine.Cfi_halt; _ } -> ()
  | o -> Alcotest.failf "mcfi: %a" Security.Attacks.pp_outcome o

(* ---- crash-only teardown: the reader-epoch leak ---- *)

(* A process's machine registers an epoch reader on the shared tables at
   creation.  If the process dies without unregistering, the corpse's
   stalled epoch gates [try_quiesce] forever — the leak [teardown]
   exists to fix.  Kill a process mid-life, tear it down, and prove the
   tables still reach quiescence on the survivor's evidence alone. *)
let test_teardown_releases_reader () =
  let proc =
    Mcfi.Pipeline.build_process
      ~sources:[ ("main", "int main() { return 0; }") ]
      ()
  in
  let t = Option.get (Mcfi_runtime.Process.tables proc) in
  Alcotest.(check int)
    "process machine is registered" 1
    (Idtables.Tables.registered_readers t);
  (* a survivor thread, registered and advancing *)
  let survivor = Idtables.Tables.register_reader t in
  (* an install makes quiescence worth declaring *)
  ignore (Idtables.Tx.refresh t);
  Alcotest.(check bool)
    "updates pending" true
    (Idtables.Tables.updates_since_quiesce t > 0);
  (* the survivor advances; the process machine does not (it is "dead"):
     quiescence must NOT be declarable while the corpse stays registered *)
  Idtables.Tables.reader_quiescent survivor;
  Alcotest.(check bool)
    "corpse gates quiescence" false
    (Idtables.Tables.quiesce_attempt t);
  (* crash-only teardown: after it, the survivor's evidence suffices *)
  Mcfi_runtime.Process.teardown proc;
  Alcotest.(check int)
    "corpse unregistered" 1
    (Idtables.Tables.registered_readers t);
  Idtables.Tables.reader_quiescent survivor;
  Alcotest.(check bool)
    "quiescence reachable after teardown" true
    (Idtables.Tables.quiesce_attempt t);
  Alcotest.(check int)
    "counter reset" 0
    (Idtables.Tables.updates_since_quiesce t);
  (* idempotent: a second teardown must not unregister anyone else *)
  Mcfi_runtime.Process.teardown proc;
  Alcotest.(check int)
    "teardown idempotent" 1
    (Idtables.Tables.registered_readers t);
  Idtables.Tables.unregister_reader t survivor

(* A process killed mid-install leaves the intent journal set (the lock
   is released on the way out); teardown must redo the torn install, not
   just drop the reader. *)
let test_teardown_recovers_torn_install () =
  let proc =
    Mcfi.Pipeline.build_process
      ~sources:[ ("main", "int main() { return 0; }") ]
      ()
  in
  let t = Option.get (Mcfi_runtime.Process.tables proc) in
  let v0 = Idtables.Tables.version t in
  (* die inside the next update transaction, between the two phases *)
  Faults.arm (Faults.Plan.At { point = Between_tary_and_bary; hit = 1 });
  (match Idtables.Tx.refresh t with
  | (_ : int) -> Alcotest.fail "fault did not fire"
  | exception Faults.Injected _ -> ());
  Faults.disarm ();
  Alcotest.(check bool)
    "journal left set" true
    (Idtables.Tables.journal t <> None);
  Mcfi_runtime.Process.teardown proc;
  Alcotest.(check bool)
    "journal cleared by teardown" true
    (Idtables.Tables.journal t = None);
  Alcotest.(check bool)
    "torn install completed" true
    (Idtables.Tables.version t > v0)

let prop_random_corruption_stays_in_cfg =
  QCheck.Test.make ~name:"attacker corruption never escapes the CFG" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      let _reason, sound =
        Security.Attacks.random_corruption ~seed:(Int64.of_int seed) ~writes:1
      in
      sound)

let () =
  Alcotest.run "runtime"
    [
      ("suite plain vs mcfi", suite_cases);
      ("suite tco", suite_tco_cases);
      ( "linking",
        [
          Alcotest.test_case "separate compilation" `Quick
            test_separate_compilation;
          Alcotest.test_case "duplicate symbol" `Quick
            test_duplicate_symbol_rejected;
          Alcotest.test_case "undefined symbol" `Quick
            test_undefined_symbol_rejected;
        ] );
      ( "dynamic linking",
        [
          Alcotest.test_case "dlopen binds plt" `Quick test_dlopen_binds_plt;
          Alcotest.test_case "unbound plt halts" `Quick test_unbound_plt_halts;
          Alcotest.test_case "unknown module" `Quick
            test_dlopen_unknown_module_fails;
          Alcotest.test_case "version bump" `Quick test_dlopen_updates_version;
          Alcotest.test_case "dlsym" `Quick test_dlsym;
        ] );
      ( "K1 semantics",
        [
          Alcotest.test_case "K1 call halts" `Quick
            test_k1_call_halts_under_mcfi;
          Alcotest.test_case "wrapper fix runs" `Quick
            test_k1_fixed_by_wrapper_runs;
        ] );
      ( "machine",
        [
          Alcotest.test_case "stack discipline" `Quick
            test_machine_stack_discipline;
          Alcotest.test_case "stack overflow" `Quick
            test_machine_stack_overflow_faults;
          Alcotest.test_case "fuel" `Quick test_machine_fuel;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "stack smash" `Quick test_stack_smash;
          Alcotest.test_case "fptr hijack vs coarse CFI" `Quick
            test_fptr_hijack;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "releases reader registration" `Quick
            test_teardown_releases_reader;
          Alcotest.test_case "recovers torn install" `Quick
            test_teardown_recovers_torn_install;
        ] );
      ( "attack props",
        [ QCheck_alcotest.to_alcotest prop_random_corruption_stays_in_cfg ] );
    ]
