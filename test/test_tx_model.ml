(* Exhaustive interleaving check of the transaction protocol (§5.2).

   The paper argues linearizability informally: the update transaction's
   Tary-then-barrier-then-Bary ordering guarantees a check transaction
   either sees the old CFG or the new CFG, never a mixture it would
   wrongly PASS.  This test operationalizes the argument as a small
   model: both transactions are decomposed into atomic steps, every
   interleaving of one check against one update (and against two
   successive updates) is enumerated, and each outcome is validated
   against the specification:

   - if the check PASSES, the (branch, target) edge must be allowed by
     the old CFG or by the new CFG — a pass explained by neither is a
     security violation of the mechanism itself;
   - if the check reports a VIOLATION, the edge must be disallowed by
     the old or the new CFG (transient false halts on a genuinely
     revoked edge are acceptable and expected, per the paper);
   - a check that keeps retrying while the update is stalled never
     returns a wrong answer (bounded retries report exhaustion).

   The model uses the real Id/Tables/Tx code — only the scheduler is
   simulated. *)

open Idtables

let code_base = 0x1000

(* A CFG for the model: branch slot 0's ECN and the ECN of two targets. *)
type cfg = { t0 : int option; t1 : int option; branch : int }

let addr0 = code_base
let addr1 = code_base + 4

let install_ops ?version cfg tables =
  (* The atomic steps of TxUpdate (Fig. 3), as closures: bump version,
     write each Tary slot, barrier+GOT, write the Bary slot.  [version]
     pins the version explicitly — a journal redo replays the torn
     install's version rather than bumping ([Tx.recover]). *)
  let v = ref 0 in
  [
    (fun () ->
      v :=
        (match version with
        | Some v -> v
        | None -> (Tables.version tables + 1) mod Id.max_version);
      Tables.set_version tables !v);
    (fun () ->
      Tables.tary_set tables addr0
        (match cfg.t0 with
        | Some ecn -> Id.pack ~ecn ~version:!v
        | None -> Id.invalid));
    (fun () ->
      Tables.tary_set tables addr1
        (match cfg.t1 with
        | Some ecn -> Id.pack ~ecn ~version:!v
        | None -> Id.invalid));
    (fun () -> Tables.publish tables);
    (fun () -> Tables.bary_set tables 0 (Id.pack ~ecn:cfg.branch ~version:!v));
  ]

(* The check transaction's steps, with its state machine made explicit so
   the scheduler can stop it between the two reads. *)
type check_state = {
  mutable bid : Id.t;
  mutable tid : Id.t;
  mutable result : [ `Running | `Pass | `Violation | `Exhausted ];
  mutable budget : int;
  target : int;
}

let check_steps st tables =
  (* one round = read bary; read tary; decide (maybe restart) *)
  let read_bary () = st.bid <- Tables.bary_read tables 0 in
  let read_tary () = st.tid <- Tables.tary_read tables st.target in
  let decide () =
    if st.bid = st.tid then st.result <- `Pass
    else if not (Id.valid st.tid) then st.result <- `Violation
    else if not (Id.same_version st.bid st.tid) then begin
      st.budget <- st.budget - 1;
      if st.budget <= 0 then st.result <- `Exhausted
    end
    else st.result <- `Violation
  in
  (read_bary, read_tary, decide)

(* Does [cfg] allow branch 0 -> target? *)
let allows cfg target =
  let tecn = if target = addr0 then cfg.t0 else cfg.t1 in
  tecn = Some cfg.branch

(* Drive one check (with retries) against an updater whose remaining
   steps are injected according to [schedule]: schedule.(k) tells how
   many update steps run before the k-th check step.  Returns the
   outcome. *)
let drive tables update_steps ~target schedule =
  let run_update_steps n =
    for _ = 1 to n do
      match !update_steps with
      | op :: rest ->
        op ();
        update_steps := rest
      | [] -> ()
    done
  in
  let st =
    { bid = 0; tid = 0; result = `Running; budget = 50; target }
  in
  let read_bary, read_tary, decide = check_steps st tables in
  let k = ref 0 in
  let next_schedule () =
    let n = if !k < Array.length schedule then schedule.(!k) else 0 in
    incr k;
    n
  in
  while st.result = `Running do
    run_update_steps (next_schedule ());
    read_bary ();
    run_update_steps (next_schedule ());
    read_tary ();
    run_update_steps (next_schedule ());
    decide ()
  done;
  (* drain the update so post-conditions can also be checked *)
  run_update_steps 99;
  st.result

let run_interleaving ~old_cfg ~new_cfg ~target schedule =
  let tables = Tables.create ~code_base ~capacity:16 ~bary_slots:1 () in
  (* install the old CFG completely *)
  List.iter (fun op -> op ()) (install_ops old_cfg tables);
  drive tables (ref (install_ops new_cfg tables)) ~target schedule

(* The journal-redo variant: an updater died [torn_at] steps into its
   install, and the next lock holder redoes the whole install from the
   journal at the {e same} version ([Tx.recover_locked]) while the check
   runs.  Already-written slots are rewritten with identical words, so
   the redo must satisfy the same old-or-new specification. *)
let run_redo_interleaving ~old_cfg ~new_cfg ~target ~torn_at schedule =
  let tables = Tables.create ~code_base ~capacity:16 ~bary_slots:1 () in
  List.iter (fun op -> op ()) (install_ops old_cfg tables);
  let v2 = (Tables.version tables + 1) mod Id.max_version in
  (* the dying updater's partial install *)
  let torn = ref (install_ops ~version:v2 new_cfg tables) in
  for _ = 1 to torn_at do
    match !torn with
    | op :: rest ->
      op ();
      torn := rest
    | [] -> ()
  done;
  drive tables (ref (install_ops ~version:v2 new_cfg tables)) ~target schedule

(* Enumerate all ways to cut the update's 5 steps across the first few
   scheduler slots (checks may retry, so later slots see 0 steps). *)
let schedules =
  let rec cuts total slots =
    if slots = 0 then if total = 0 then [ [] ] else []
    else
      List.concat_map
        (fun here ->
          List.map (fun rest -> here :: rest) (cuts (total - here) (slots - 1)))
        (List.init (total + 1) Fun.id)
  in
  List.map Array.of_list (cuts 5 6)

let cfg_space =
  (* a few representative CFGs over two targets and ECNs {0,1} *)
  [
    { t0 = Some 0; t1 = Some 1; branch = 0 }; (* edge to t0 only *)
    { t0 = Some 0; t1 = Some 0; branch = 0 }; (* both allowed *)
    { t0 = Some 1; t1 = Some 0; branch = 0 }; (* edge to t1 only *)
    { t0 = None; t1 = Some 0; branch = 0 };   (* t0 not a target *)
    { t0 = Some 1; t1 = Some 1; branch = 0 }; (* branch class empty *)
  ]

let test_exhaustive_one_update () =
  let cases = ref 0 in
  List.iter
    (fun old_cfg ->
      List.iter
        (fun new_cfg ->
          List.iter
            (fun target ->
              List.iter
                (fun schedule ->
                  incr cases;
                  match
                    run_interleaving ~old_cfg ~new_cfg ~target schedule
                  with
                  | `Pass ->
                    if not (allows old_cfg target || allows new_cfg target)
                    then
                      Alcotest.failf
                        "illegal pass: target 0x%x under neither CFG" target
                  | `Violation ->
                    if allows old_cfg target && allows new_cfg target then
                      Alcotest.failf
                        "spurious violation: target 0x%x allowed by both \
                         CFGs"
                        target
                  | `Exhausted ->
                    (* only possible while the update is stalled between
                       phases; with the update drained this cannot be the
                       final state of an unbounded check *)
                    ()
                  | `Running -> assert false)
                schedules)
            [ addr0; addr1 ])
        cfg_space)
    cfg_space;
  Alcotest.(check bool)
    (Printf.sprintf "checked %d interleavings" !cases)
    true (!cases > 10000)

(* Every interleaving of a check against a journal redo, for every
   possible tear point of the original install: the same specification
   must hold — recovery is replay, never a third CFG. *)
let test_exhaustive_journal_redo () =
  let cases = ref 0 in
  List.iter
    (fun old_cfg ->
      List.iter
        (fun new_cfg ->
          List.iter
            (fun target ->
              List.iter
                (fun torn_at ->
                  List.iter
                    (fun schedule ->
                      incr cases;
                      match
                        run_redo_interleaving ~old_cfg ~new_cfg ~target
                          ~torn_at schedule
                      with
                      | `Pass ->
                        if
                          not
                            (allows old_cfg target || allows new_cfg target)
                        then
                          Alcotest.failf
                            "illegal pass during redo (torn at %d): target \
                             0x%x under neither CFG"
                            torn_at target
                      | `Violation ->
                        if allows old_cfg target && allows new_cfg target
                        then
                          Alcotest.failf
                            "spurious violation during redo (torn at %d): \
                             target 0x%x allowed by both CFGs"
                            torn_at target
                      | `Exhausted -> ()
                      | `Running -> assert false)
                    schedules)
                [ 0; 1; 2; 3; 4 ])
            [ addr0; addr1 ])
        cfg_space)
    cfg_space;
  Alcotest.(check bool)
    (Printf.sprintf "checked %d redo interleavings" !cases)
    true
    (!cases > 50000)

(* With the update fully completed before or after the check, outcomes
   must match the respective CFG exactly. *)
let test_quiescent_semantics () =
  List.iter
    (fun cfg ->
      List.iter
        (fun target ->
          let r =
            run_interleaving ~old_cfg:cfg ~new_cfg:cfg ~target
              (Array.make 6 0)
          in
          let expected = if allows cfg target then `Pass else `Violation in
          if r <> expected then
            Alcotest.failf "quiescent mismatch for target 0x%x" target)
        [ addr0; addr1 ])
    cfg_space

(* A check stalled against a half-done update retries (never decides
   wrongly), and completes as soon as the update finishes. *)
let test_stalled_update_retries () =
  let old_cfg = { t0 = Some 0; t1 = Some 1; branch = 0 } in
  let new_cfg = { t0 = Some 1; t1 = Some 0; branch = 1 } in
  (* Freeze after the Tary writes but before Bary: Tary carries the new
     version, Bary the old one. The check must retry, then pass once the
     update completes (the new CFG still allows branch->t0 via ECN 1). *)
  let r =
    run_interleaving ~old_cfg ~new_cfg ~target:addr0
      [| 4; 0; 0; 0; 0; 1 |]
  in
  Alcotest.(check bool) "eventually passes" true (r = `Pass)

(* ---- backoff jitter ---- *)

(* Unjittered backoff is the historical schedule: 2^min(round, 6). *)
let test_backoff_unjittered () =
  List.iter
    (fun (round, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "spins at round %d" round)
        expect
        (Idtables.Tx.backoff_spins round))
    [ (0, 1); (1, 2); (2, 4); (6, 64); (7, 64); (100, 64) ]

(* Jittered spins stay in [base, 2*base), and the schedule is a pure
   function of the PRNG seed: two streams from the same seed agree
   spin for spin, a different seed diverges somewhere. *)
let test_backoff_jitter_deterministic () =
  let schedule seed =
    let p = Mcfi_util.Prng.create seed in
    List.init 64 (fun i -> Idtables.Tx.backoff_spins ~jitter:p (i mod 10))
  in
  let a = schedule 0xA5EEDL and b = schedule 0xA5EEDL in
  Alcotest.(check (list int)) "same seed, same schedule" a b;
  let c = schedule 0xD1FFL in
  Alcotest.(check bool) "different seed diverges" true (a <> c);
  let p = Mcfi_util.Prng.create 0x7357L in
  for round = 0 to 20 do
    let base = 1 lsl min round 6 in
    let spins = Idtables.Tx.backoff_spins ~jitter:p round in
    if spins < base || spins >= 2 * base then
      Alcotest.failf "round %d: spins %d outside [%d, %d)" round spins base
        (2 * base)
  done

(* A jittered check transaction still decides correctly through a retry
   storm: version-skew the tables by hand, let the check spin, and
   complete the install from another "updater". *)
let test_check_with_jitter () =
  let t =
    Idtables.Tables.create ~code_base:0 ~capacity:8 ~bary_slots:1 ()
  in
  let v = Idtables.Tx.update t ~tary:[ (0, 1) ] ~bary:[ (0, 1) ] in
  Alcotest.(check bool) "installed" true (v > 0);
  let jitter = Mcfi_util.Prng.create 0xBACC0FFL in
  let retried = ref 0 in
  (* consistent tables: no retries, Pass *)
  (match
     Idtables.Tx.check ~jitter ~on_retry:(fun () -> incr retried) t
       ~bary_index:0 ~target:0
   with
  | Idtables.Tx.Pass -> ()
  | o -> Alcotest.failf "expected pass, got %a" Idtables.Tx.pp_outcome o);
  Alcotest.(check int) "no retries when consistent" 0 !retried;
  (* skew the version the way a mid-flight update would, bounded budget:
     the jittered retry loop must exhaust rather than decide *)
  Idtables.Tables.bary_set t 0 (Idtables.Id.pack ~ecn:1 ~version:(v + 1));
  (match
     Idtables.Tx.check ~max_retries:6 ~jitter
       ~on_retry:(fun () -> incr retried)
       t ~bary_index:0 ~target:0
   with
  | Idtables.Tx.Retries_exhausted -> ()
  | o -> Alcotest.failf "expected exhaustion, got %a" Idtables.Tx.pp_outcome o);
  Alcotest.(check int) "used the whole budget" 6 !retried

let () =
  Alcotest.run "tx_model"
    [
      ( "interleavings",
        [
          Alcotest.test_case "exhaustive one-update schedules" `Quick
            test_exhaustive_one_update;
          Alcotest.test_case "exhaustive journal-redo schedules" `Quick
            test_exhaustive_journal_redo;
          Alcotest.test_case "quiescent semantics" `Quick
            test_quiescent_semantics;
          Alcotest.test_case "stalled update retries" `Quick
            test_stalled_update_retries;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "unjittered schedule" `Quick
            test_backoff_unjittered;
          Alcotest.test_case "jitter deterministic per seed" `Quick
            test_backoff_jitter_deterministic;
          Alcotest.test_case "check with jitter" `Quick test_check_with_jitter;
        ] );
    ]
