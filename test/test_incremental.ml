(* Differential oracle for incremental CFG generation (cfggen level),
   and the randomized dlopen-chain test (process level).

   The cfggen half builds random synthetic module streams and checks,
   after every [Cfggen.merge], that the maintained state is bit-identical
   to a from-scratch [Cfggen.generate] over the union of the modules —
   ECN maps and stats — and that replaying the returned delta over a
   model table reproduces the full maps.

   The process half compiles real MiniC modules, loads them through
   [Process.load] with the incremental path on, and compares the live
   tables against full regeneration after every dlopen, including a
   mid-chain load that fails and must roll back. *)

open Cfg.Cfggen
module Ast = Minic.Ast

let ft params ret : Ast.fun_ty = { params; varargs = false; ret }
let vft params ret : Ast.fun_ty = { params; varargs = true; ret }

let ty_pool =
  [|
    ft [ Ast.Tint ] Ast.Tint;
    ft [ Ast.Tint; Ast.Tint ] Ast.Tint;
    ft [ Ast.Tptr Ast.Tchar ] Ast.Tint;
    ft [] Ast.Tvoid;
    vft [ Ast.Tint ] Ast.Tint;
    ft [ Ast.Tptr Ast.Tint ] Ast.Tvoid;
  |]

(* ---------- synthetic module streams ---------- *)

(* Module [k] defines functions "m<k>f<i>"; every module has at least
   one, so "m<j>f0" is a valid cross-module reference for any [j] in the
   chain — including modules not loaded yet, which exercises the
   defined-later / taken-earlier transitions. *)
let gen_module rng ~nmodules k =
  let base = 0x10000 * (k + 1) in
  let pick a = a.(Random.State.int rng (Array.length a)) in
  let name j i = Printf.sprintf "m%df%d" j i in
  let nfns = 1 + Random.State.int rng 4 in
  let functions =
    List.init nfns (fun i ->
        {
          fname = name k i;
          fty = pick ty_pool;
          faddr = base + (i * 0x40);
          faddress_taken = Random.State.bool rng;
        })
  in
  let any_name () = name (Random.State.int rng nmodules) 0 in
  let extern_taken =
    List.init (Random.State.int rng 3) (fun _ -> any_name ())
  in
  let next_addr = ref (base + 0x800) in
  let fresh_addr () =
    let a = !next_addr in
    next_addr := a + 8;
    a
  in
  let own () = (List.nth functions (Random.State.int rng nfns)).fname in
  let sites = ref [] in
  let add s = sites := s :: !sites in
  List.iter
    (fun f -> if Random.State.bool rng then add (Sreturn { fn = f.fname }))
    functions;
  for _ = 1 to Random.State.int rng 4 do
    add (Sicall { fn = own (); ty = pick ty_pool; ret_addr = fresh_addr () })
  done;
  for _ = 1 to Random.State.int rng 2 do
    add (Sitail { fn = own (); ty = pick ty_pool })
  done;
  if Random.State.int rng 3 = 0 then
    add
      (Sjumptable
         {
           fn = own ();
           target_addrs =
             List.init
               (1 + Random.State.int rng 3)
               (fun _ -> fresh_addr ());
         });
  if Random.State.int rng 4 = 0 then add (Slongjmp { fn = own () });
  for _ = 1 to Random.State.int rng 2 do
    add (Splt { symbol = any_name () })
  done;
  let direct_calls =
    List.init (Random.State.int rng 3) (fun _ ->
        (own (), any_name (), fresh_addr ()))
  in
  let tail_calls =
    List.init (Random.State.int rng 3) (fun _ -> (own (), any_name ()))
  in
  let setjmp_addrs =
    List.init (Random.State.int rng 2) (fun _ -> fresh_addr ())
  in
  {
    m_env = Minic.Types.empty;
    m_functions = functions;
    m_extern_taken = extern_taken;
    m_sites = Array.of_list (List.rev !sites);
    m_slot_base = 0 (* fixed up by the caller *);
    m_direct_calls = direct_calls;
    m_tail_calls = tail_calls;
    m_setjmp_addrs = setjmp_addrs;
  }

module SSet = Set.Make (String)

(* The union view [generate] expects: address-taken is a program-wide
   property, so a function is flagged if any module so far takes it. *)
let combined_input modules =
  let taken =
    List.fold_left
      (fun acc m ->
        let acc =
          List.fold_left
            (fun acc f ->
              if f.faddress_taken then SSet.add f.fname acc else acc)
            acc m.m_functions
        in
        List.fold_left (fun acc n -> SSet.add n acc) acc m.m_extern_taken)
      SSet.empty modules
  in
  {
    env = Minic.Types.empty;
    functions =
      List.concat_map
        (fun m ->
          List.map
            (fun f -> { f with faddress_taken = SSet.mem f.fname taken })
            m.m_functions)
        modules;
    sites = Array.concat (List.map (fun m -> m.m_sites) modules);
    direct_calls = List.concat_map (fun m -> m.m_direct_calls) modules;
    tail_calls = List.concat_map (fun m -> m.m_tail_calls) modules;
    setjmp_addrs = List.concat_map (fun m -> m.m_setjmp_addrs) modules;
  }

let pairs = Alcotest.(list (pair int int))

(* Replay a delta over a model of the installed tables; grow entries
   must name a donor that exists and already carries the same ECN. *)
let apply_delta (mt, mb) delta =
  List.iter (fun (a, e) -> Hashtbl.replace mt a e) delta.d_tary;
  List.iter (fun (s, e) -> Hashtbl.replace mb s e) delta.d_bary;
  let donor_ecn = function
    | Donor_tary a -> Hashtbl.find_opt mt a
    | Donor_bary s -> Hashtbl.find_opt mb s
  in
  List.iter
    (fun (a, e, d) ->
      Alcotest.(check (option int)) "tary donor carries class ECN" (Some e)
        (donor_ecn d);
      Hashtbl.replace mt a e)
    delta.d_tary_grow;
  List.iter
    (fun (s, e, d) ->
      Alcotest.(check (option int)) "bary donor carries class ECN" (Some e)
        (donor_ecn d);
      Hashtbl.replace mb s e)
    delta.d_bary_grow

let sorted_of_tbl tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let run_chain seed nmodules =
  let rng = Random.State.make [| seed |] in
  let modules =
    List.init nmodules (fun k -> gen_module rng ~nmodules k)
  in
  let mt = Hashtbl.create 64 and mb = Hashtbl.create 64 in
  let _final =
    List.fold_left
      (fun (state, loaded) m ->
        let m = { m with m_slot_base = state_sites state } in
        let state, delta = merge state m in
        let loaded = loaded @ [ m ] in
        let reference = generate (combined_input loaded) in
        let inc_tary, inc_bary = state_tables state in
        Alcotest.check pairs
          (Printf.sprintf "seed %d: tary after module %d" seed
             (List.length loaded))
          reference.tary inc_tary;
        Alcotest.check pairs
          (Printf.sprintf "seed %d: bary after module %d" seed
             (List.length loaded))
          reference.bary inc_bary;
        Alcotest.(check (triple int int int))
          "stats"
          ( reference.stats.n_ibs,
            reference.stats.n_ibts,
            reference.stats.n_eqcs )
          ( (state_stats state).n_ibs,
            (state_stats state).n_ibts,
            (state_stats state).n_eqcs );
        apply_delta (mt, mb) delta;
        Alcotest.check pairs "delta replay reproduces tary" reference.tary
          (sorted_of_tbl mt);
        Alcotest.check pairs "delta replay reproduces bary" reference.bary
          (sorted_of_tbl mb);
        (state, loaded))
      (empty_state (), [])
      modules
  in
  ()

let test_random_chains () =
  for seed = 1 to 25 do
    run_chain seed (3 + (seed mod 5))
  done

let test_merge_misuse () =
  let m =
    {
      m_env = Minic.Types.empty;
      m_functions =
        [ { fname = "f"; fty = ty_pool.(0); faddr = 0x100; faddress_taken = true } ];
      m_extern_taken = [];
      m_sites = [| Sreturn { fn = "f" } |];
      m_slot_base = 0;
      m_direct_calls = [];
      m_tail_calls = [];
      m_setjmp_addrs = [];
    }
  in
  let s, _ = merge (empty_state ()) m in
  Alcotest.check_raises "slot base mismatch"
    (Invalid_argument "Cfggen.merge: slot base 0, expected 1") (fun () ->
      ignore (merge s m));
  Alcotest.check_raises "duplicate definition"
    (Invalid_argument "Cfggen.merge: duplicate definition of f") (fun () ->
      ignore (merge s { m with m_slot_base = 1 }))

(* A state copy must be independent: merging into the new state must not
   disturb the snapshot kept for rollback. *)
let test_merge_preserves_input_state () =
  let rng = Random.State.make [| 7 |] in
  let m0 = gen_module rng ~nmodules:2 0 in
  let m1 =
    let m = gen_module rng ~nmodules:2 1 in
    { m with m_slot_base = Array.length m0.m_sites }
  in
  let s0, _ = merge (empty_state ()) m0 in
  let before = state_tables s0 in
  let _ = merge s0 m1 in
  Alcotest.check pairs "tary untouched" (fst before) (fst (state_tables s0));
  Alcotest.check pairs "bary untouched" (snd before) (snd (state_tables s0))

let cfggen_tests =
  [
    Alcotest.test_case "randomized chains: merge ≡ generate" `Quick
      test_random_chains;
    Alcotest.test_case "merge misuse raises" `Quick test_merge_misuse;
    Alcotest.test_case "merge does not mutate its input" `Quick
      test_merge_preserves_input_state;
  ]

(* ---------- process level: real modules through [Process.load] ---------- *)

module Process = Mcfi_runtime.Process

(* A random self-contained MiniC module: int(int) functions (sometimes
   also an int(int,int)) taken through local pointer arrays and called
   indirectly, so type classes overlap across every module of a chain. *)
let module_src rng k =
  let b = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let nf = 1 + Random.State.int rng 3 in
  for i = 0 to nf - 1 do
    p "int m%d_f%d(int x) { return x * %d + %d; }\n" k i
      (1 + Random.State.int rng 5)
      (Random.State.int rng 100)
  done;
  let two = Random.State.bool rng in
  if two then
    p "int m%d_g0(int x, int y) { return x + y * %d; }\n" k
      (1 + Random.State.int rng 3);
  p "int m%d_go(int n) {\n" k;
  p "  int (*fp[%d])(int);\n" nf;
  if two then p "  int (*gp)(int, int);\n";
  p "  int s;\n  int i;\n";
  for i = 0 to nf - 1 do
    p "  fp[%d] = m%d_f%d;\n" i k i
  done;
  if two then p "  gp = m%d_g0;\n" k;
  p "  s = 0;\n";
  p "  for (i = 0; i < n; i = i + 1) {\n";
  p "    s = s + fp[i %% %d](i);\n" nf;
  if two then p "    s = s + gp(s, i);\n";
  p "  }\n  return s;\n}\n";
  Buffer.contents b

let obj_of = Testlib.obj_of
let check_oracle = Testlib.check_oracle

let test_process_chain () =
  for seed = 1 to 4 do
    let rng = Random.State.make [| 0xC0FFEE + seed |] in
    let exe =
      Mcfi.Pipeline.link_executable
        ~sources:[ ("main", "int main() { return 0; }") ]
        ()
    in
    let inc = Process.create ~incremental:true () in
    let full = Process.create ~incremental:false () in
    Process.load inc exe;
    Process.load full exe;
    let nmods = 4 + Random.State.int rng 3 in
    (* one load fails and must roll back somewhere mid-chain *)
    let fail_at = 1 + Random.State.int rng (nmods - 1) in
    for k = 0 to nmods - 1 do
      if k = fail_at then begin
        (* redefines m0_f0, which module 0 already owns: the load dies
           after layout and must leave no trace *)
        let bad =
          obj_of
            (Printf.sprintf "bad%d" seed)
            ("int m0_f0(int x) { return x; }\n" ^ module_src rng 99)
        in
        let names_before = Process.loaded_names inc in
        (match Process.load inc bad with
        | () -> Alcotest.fail "duplicate-symbol load unexpectedly succeeded"
        | exception _ -> ());
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: rollback leaves modules intact" seed)
          names_before
          (Process.loaded_names inc);
        check_oracle inc "after mid-chain rollback"
      end;
      let src = module_src rng k in
      Process.load inc (obj_of (Printf.sprintf "m%d" k) src);
      Process.load full (obj_of (Printf.sprintf "m%d" k) src);
      (* incremental tables ≡ a from-scratch generate over everything *)
      check_oracle inc (Printf.sprintf "seed %d after module %d" seed k);
      (* and the merged state agrees with the full-regeneration twin *)
      match (Process.cfg_stats inc, Process.cfg_stats full) with
      | Some a, Some b ->
        Alcotest.(check (triple int int int))
          (Printf.sprintf "seed %d: stats vs full twin after module %d" seed k)
          (b.n_ibs, b.n_ibts, b.n_eqcs)
          (a.n_ibs, a.n_ibts, a.n_eqcs)
      | _ -> Alcotest.fail "missing cfg stats"
    done
  done

let process_tests =
  [
    Alcotest.test_case "randomized dlopen chains with rollback" `Quick
      test_process_chain;
  ]

let () =
  Alcotest.run "incremental"
    [ ("cfggen-oracle", cfggen_tests); ("process-oracle", process_tests) ]
