(* Direct VM tests: hand-assembled instruction sequences run on the
   machine, asserting register/memory/flag semantics, fault behaviour,
   and the CISC-faithful property that control transfers into the middle
   of an instruction execute whatever those bytes decode to. *)

module Machine = Mcfi_runtime.Machine
module Instr = Vmisa.Instr
module Encode = Vmisa.Encode
module Abi = Vmisa.Abi

let boot ?tables instrs =
  let image = Encode.encode_all instrs in
  let m =
    Machine.create ?tables ~code_base:Abi.code_base ~code_capacity:4096
      ~data_words:4096 ()
  in
  ignore (Machine.append_code m image);
  Machine.set_pc m Abi.code_base;
  Machine.set_brk m 16;
  m

(* exit with the value currently in r0 *)
let exit_r0 = Instr.[ Mov_rr (1, 0); Mov_ri (0, Abi.sys_exit); Syscall ]

let run_expect name instrs expected =
  match Machine.run ~fuel:100_000 (boot instrs) with
  | r when r = expected -> ()
  | r ->
    Alcotest.failf "%s: got %a" name Machine.pp_exit_reason r

let test_arith_and_exit () =
  (* (7 * 6) exits with 42 *)
  run_expect "arith"
    (Instr.
       [ Mov_ri (0, 7); Mov_ri (2, 6); Binop (Mul, 0, 2) ]
    @ exit_r0)
    (Machine.Exited 42)

let test_flags_and_branches () =
  (* 5 < 9: take the branch, exit 1; else exit 0 *)
  let base = Abi.code_base in
  let prologue =
    Instr.[ Mov_ri (0, 5); Mov_ri (1, 9); Cmp_rr (0, 1) ]
  in
  let prologue_size =
    List.fold_left (fun a i -> a + Instr.size i) 0 prologue
  in
  (* layout: prologue; jcc lt taken; [exit 0]; taken: [exit 1] *)
  let exit_seq v =
    Instr.[ Mov_ri (1, v); Mov_ri (0, Abi.sys_exit); Syscall ]
  in
  let exit_size =
    List.fold_left (fun a i -> a + Instr.size i) 0 (exit_seq 0)
  in
  let jcc = Instr.Jcc (Instr.Lt, base + prologue_size + Instr.size (Instr.Jcc (Instr.Lt, 0)) + exit_size) in
  run_expect "flags"
    (prologue @ [ jcc ] @ exit_seq 0 @ exit_seq 1)
    (Machine.Exited 1)

let test_push_pop () =
  run_expect "stack"
    (Instr.[ Mov_ri (0, 40); Push 0; Mov_ri (0, 0); Pop 2; Binop_i (Add, 2, 2);
             Mov_rr (0, 2) ]
    @ Instr.[ Mov_rr (1, 0); Mov_ri (0, Abi.sys_exit); Syscall ])
    (Machine.Exited 42)

let test_wild_store_faults () =
  run_expect "wild store"
    Instr.[ Mov_ri (2, 123456); Mov_ri (3, 7); Store (2, 0, 3) ]
    (Machine.Fault "store to 0x1e240")

let test_null_load_faults () =
  run_expect "null load"
    Instr.[ Mov_ri (2, 0); Load (3, 2, 0) ]
    (Machine.Fault "load from 0x0")

let test_div_zero_faults () =
  run_expect "div0"
    Instr.[ Mov_ri (0, 5); Mov_ri (1, 0); Binop (Div, 0, 1) ]
    (Machine.Fault "division by zero")

let test_fetch_off_code_faults () =
  (* running past the loaded image is a fetch fault *)
  match Machine.run ~fuel:10 (boot Instr.[ Nop ]) with
  | Machine.Fault _ -> ()
  | r -> Alcotest.failf "runs off: got %a" Machine.pp_exit_reason r

let test_mid_instruction_execution () =
  (* jump into the immediate of a Mov_ri: the bytes there are an attacker
     -chosen instruction stream.  Embed the encoding of "Mov_ri(1,7)"...
     simpler: embed a byte sequence decoding to Syscall (0x03) with r0
     pre-set to exit.  Mov_ri (2, 0x03) has its immediate at offset +2,
     whose first byte is 0x03 = Syscall. *)
  let base = Abi.code_base in
  let instrs =
    Instr.
      [
        Mov_ri (0, Abi.sys_exit); (* 10 bytes *)
        Mov_ri (1, 99); (* 10 bytes *)
        Mov_ri (2, 0x03); (* 10 bytes; imm starts at +22 *)
        Jmp (base + 22); (* jump into the immediate *)
        Halt;
      ]
  in
  run_expect "mid-instruction gadget" instrs (Machine.Exited 99)

let test_tary_load_reads_tables () =
  let tables =
    Idtables.Tables.create ~code_base:Abi.code_base ~capacity:4096
      ~bary_slots:4 ()
  in
  ignore
    (Idtables.Tx.update tables
       ~tary:[ (Abi.code_base + 8, 5) ]
       ~bary:[ (2, 5) ]);
  let m =
    boot ~tables
      Instr.
        [
          Mov_ri (3, Abi.code_base + 8);
          Tary_load (4, 3);
          Bary_load (5, 2);
          Cmp_rr (4, 5);
        ]
  in
  (match Machine.run ~fuel:1000 m with
  | Machine.Fault _ -> () (* runs off the end after the loads *)
  | r -> Alcotest.failf "unexpected end: %a" Machine.pp_exit_reason r);
  Alcotest.(check bool) "ids match" true (Machine.reg m 4 = Machine.reg m 5);
  Alcotest.(check bool) "valid id" true (Idtables.Id.valid (Machine.reg m 4))

let test_table_access_without_tables_faults () =
  run_expect "no tables"
    Instr.[ Mov_ri (3, Abi.code_base); Tary_load (4, 3) ]
    (Machine.Fault "table access without ID tables")

let test_attacker_cannot_touch_registers () =
  (* the attacker interface only exposes data writes; a run whose result
     lives purely in registers is immune *)
  let m = boot (Instr.[ Mov_ri (0, 7); Binop_i (Mul, 0, 6) ]
                @ Instr.[ Mov_rr (1, 0); Mov_ri (0, Abi.sys_exit); Syscall ]) in
  Machine.set_attacker m (fun m ->
      (* clobber all of writable memory except the (empty) stack *)
      for a = 1 to 100 do
        Machine.write_data m a 0xdead
      done);
  match Machine.run ~fuel:1000 m with
  | Machine.Exited 42 -> ()
  | r -> Alcotest.failf "attacked run: %a" Machine.pp_exit_reason r

let test_output_capture () =
  let hello = [ Instr.Mov_ri (1, Char.code 'h') ] in
  let m =
    boot
      (hello
      @ Instr.[ Mov_ri (0, Abi.sys_print_int); Syscall ]
      @ Instr.[ Mov_ri (1, 0); Mov_ri (0, Abi.sys_exit); Syscall ])
  in
  (match Machine.run ~fuel:1000 m with
  | Machine.Exited 0 -> ()
  | r -> Alcotest.failf "run: %a" Machine.pp_exit_reason r);
  Alcotest.(check string) "printed" "104" (Machine.output m)

let test_null_page_rejected_everywhere () =
  (* word 0 is the unmapped NULL page for the host-side accessors too:
     [read_data]/[write_data] reject it exactly as [Load]/[Store] trap on
     it, and [read_string] treats it as the end of mapped memory *)
  let m = boot [ Instr.Nop ] in
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted address 0" name
  in
  rejects "read_data" (fun () -> Machine.read_data m 0);
  rejects "write_data" (fun () -> Machine.write_data m 0 1);
  rejects "read_data oob" (fun () -> Machine.read_data m (Machine.data_size m));
  Alcotest.(check string) "read_string at 0" "" (Machine.read_string m 0);
  (* address 1 stays accessible *)
  Machine.write_data m 1 (Char.code 'x');
  Machine.write_data m 2 0;
  Alcotest.(check int) "word 1 readable" (Char.code 'x') (Machine.read_data m 1);
  Alcotest.(check string) "string at 1" "x" (Machine.read_string m 1)

let test_decode_cache_invalidation () =
  (* the flat decode memo must forget stale decodings across truncate +
     re-append: run an image, roll it back, load different bytes at the
     same addresses, and check the new bytes' semantics (not the old) *)
  let m = boot Instr.[ Mov_ri (1, 7); Mov_ri (0, Abi.sys_exit); Syscall ] in
  (match Machine.run ~fuel:100 m with
  | Machine.Exited 7 -> ()
  | r -> Alcotest.failf "first image: %a" Machine.pp_exit_reason r);
  Machine.truncate_code m ~code_end:Abi.code_base;
  ignore
    (Machine.append_code m
       (Encode.encode_all
          Instr.[ Mov_ri (1, 9); Mov_ri (0, Abi.sys_exit); Syscall ]));
  Machine.set_pc m Abi.code_base;
  (match Machine.run ~fuel:100 m with
  | Machine.Exited 9 -> ()
  | r -> Alcotest.failf "second image: %a" Machine.pp_exit_reason r);
  (* a fully truncated region is unfetchable again *)
  Machine.truncate_code m ~code_end:Abi.code_base;
  Machine.set_pc m Abi.code_base;
  (match Machine.run ~fuel:100 m with
  | Machine.Fault _ -> ()
  | r -> Alcotest.failf "truncated region: %a" Machine.pp_exit_reason r)

let test_sbrk_allocates_monotonically () =
  let m = boot [ Instr.Nop ] in
  let a = Machine.sbrk m 10 in
  let b = Machine.sbrk m 5 in
  Alcotest.(check int) "disjoint" (a + 10) b

let () =
  Alcotest.run "machine"
    [
      ( "semantics",
        [
          Alcotest.test_case "arith & exit" `Quick test_arith_and_exit;
          Alcotest.test_case "flags & branches" `Quick test_flags_and_branches;
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "output capture" `Quick test_output_capture;
          Alcotest.test_case "sbrk" `Quick test_sbrk_allocates_monotonically;
        ] );
      ( "faults",
        [
          Alcotest.test_case "wild store" `Quick test_wild_store_faults;
          Alcotest.test_case "null load" `Quick test_null_load_faults;
          Alcotest.test_case "div by zero" `Quick test_div_zero_faults;
          Alcotest.test_case "runs off code" `Quick test_fetch_off_code_faults;
          Alcotest.test_case "null page rejected everywhere" `Quick
            test_null_page_rejected_everywhere;
          Alcotest.test_case "decode cache invalidation" `Quick
            test_decode_cache_invalidation;
        ] );
      ( "security-relevant",
        [
          Alcotest.test_case "mid-instruction execution" `Quick
            test_mid_instruction_execution;
          Alcotest.test_case "tary/bary loads" `Quick
            test_tary_load_reads_tables;
          Alcotest.test_case "tables required" `Quick
            test_table_access_without_tables_faults;
          Alcotest.test_case "registers out of attacker reach" `Quick
            test_attacker_cannot_touch_registers;
        ] );
    ]
