(* Tests for the util library: union-find and the deterministic PRNG. *)

module Uf = Mcfi_util.Union_find
module Prng = Mcfi_util.Prng

let test_uf_singletons () =
  let t = Uf.create 5 in
  Alcotest.(check int) "count" 5 (Uf.count t);
  Alcotest.(check bool) "not same" false (Uf.same t 0 1)

let test_uf_union () =
  let t = Uf.create 6 in
  ignore (Uf.union t 0 1);
  ignore (Uf.union t 2 3);
  ignore (Uf.union t 1 2);
  Alcotest.(check bool) "0~3" true (Uf.same t 0 3);
  Alcotest.(check bool) "0!~4" false (Uf.same t 0 4);
  Alcotest.(check int) "count" 3 (Uf.count t)

let test_uf_groups () =
  let t = Uf.create 4 in
  ignore (Uf.union t 0 2);
  let gs = Uf.groups t in
  Alcotest.(check int) "three groups" 3 (List.length gs);
  Alcotest.(check bool) "group [0;2]" true (List.mem [ 0; 2 ] gs)

let test_uf_out_of_range () =
  let t = Uf.create 3 in
  Alcotest.check_raises "oob"
    (Invalid_argument "Union_find: key 3 out of range [0,3)") (fun () ->
      ignore (Uf.find t 3))

let prop_uf_union_same =
  QCheck.Test.make ~name:"union makes same" ~count:300
    QCheck.(pair (int_bound 49) (int_bound 49))
    (fun (a, b) ->
      let t = Uf.create 50 in
      ignore (Uf.union t a b);
      Uf.same t a b)

let prop_uf_count_invariant =
  (* after any sequence of unions, count = number of distinct groups *)
  QCheck.Test.make ~name:"count matches groups" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let t = Uf.create 20 in
      List.iter (fun (a, b) -> ignore (Uf.union t a b)) pairs;
      Uf.count t = List.length (Uf.groups t))

(* ---- the growable variant backing the incremental CFG merge ---- *)

let test_ufd_add_and_union () =
  let t = Uf.Dynamic.create () in
  Alcotest.(check int) "empty" 0 (Uf.Dynamic.size t);
  let a = Uf.Dynamic.add t in
  let b = Uf.Dynamic.add t in
  let c = Uf.Dynamic.add t in
  Alcotest.(check (list int)) "keys are dense" [ 0; 1; 2 ] [ a; b; c ];
  Alcotest.(check int) "three singletons" 3 (Uf.Dynamic.count t);
  ignore (Uf.Dynamic.union t a b);
  Alcotest.(check bool) "a~b" true (Uf.Dynamic.same t a b);
  Alcotest.(check bool) "a!~c" false (Uf.Dynamic.same t a c);
  Alcotest.(check int) "two sets" 2 (Uf.Dynamic.count t);
  (* keys added after a union start as singletons *)
  let d = Uf.Dynamic.add t in
  Alcotest.(check bool) "d alone" false (Uf.Dynamic.same t a d);
  Alcotest.(check int) "three sets" 3 (Uf.Dynamic.count t)

let test_ufd_copy_independent () =
  let t = Uf.Dynamic.create () in
  let a = Uf.Dynamic.add t in
  let b = Uf.Dynamic.add t in
  let snapshot = Uf.Dynamic.copy t in
  ignore (Uf.Dynamic.union t a b);
  let c = Uf.Dynamic.add t in
  Alcotest.(check bool) "merged in original" true (Uf.Dynamic.same t a b);
  Alcotest.(check bool)
    "snapshot untouched" false
    (Uf.Dynamic.same snapshot a b);
  Alcotest.(check int) "snapshot size" 2 (Uf.Dynamic.size snapshot);
  (* and the other direction: mutating the copy leaves the original alone *)
  let snapshot2 = Uf.Dynamic.copy t in
  ignore (Uf.Dynamic.union snapshot2 a c);
  Alcotest.(check bool) "original unaffected" false (Uf.Dynamic.same t a c)

let test_ufd_unallocated_raises () =
  let t = Uf.Dynamic.create () in
  ignore (Uf.Dynamic.add t);
  Alcotest.(check bool)
    "find on unallocated raises" true
    (match Uf.Dynamic.find t 1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_ufd_matches_static =
  (* the dynamic structure grown to n keys behaves like [create n] under
     the same union sequence *)
  QCheck.Test.make ~name:"Dynamic ≡ static under same unions" ~count:200
    QCheck.(
      list_of_size (QCheck.Gen.int_bound 30) (pair (int_bound 14) (int_bound 14)))
    (fun pairs ->
      let n = 15 in
      let s = Uf.create n in
      let d = Uf.Dynamic.create () in
      for _ = 1 to n do
        ignore (Uf.Dynamic.add d)
      done;
      List.iter
        (fun (a, b) ->
          ignore (Uf.union s a b);
          ignore (Uf.Dynamic.union d a b))
        pairs;
      Uf.count s = Uf.Dynamic.count d
      && List.for_all
           (fun (a, b) -> Uf.same s a b = Uf.Dynamic.same d a b)
           (List.concat_map
              (fun a -> List.init n (fun b -> (a, b)))
              (List.init n Fun.id)))

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  let xs = List.init 20 (fun _ -> Prng.next a) in
  let ys = List.init 20 (fun _ -> Prng.next b) in
  Alcotest.(check bool) "same stream" true (xs = ys)

let test_prng_split_independent () =
  let a = Prng.create 7L in
  let b = Prng.split a in
  Alcotest.(check bool) "diverged" true (Prng.next a <> Prng.next b)

let prop_prng_int_range =
  QCheck.Test.make ~name:"Prng.int in range" ~count:500
    QCheck.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Prng.create (Int64.of_int seed) in
      let v = Prng.int t bound in
      0 <= v && v < bound)

let prop_prng_float_range =
  QCheck.Test.make ~name:"Prng.float in [0,1)" ~count:500 QCheck.int
    (fun seed ->
      let t = Prng.create (Int64.of_int seed) in
      let v = Prng.float t in
      0.0 <= v && v < 1.0)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "union_find",
        [
          Alcotest.test_case "singletons" `Quick test_uf_singletons;
          Alcotest.test_case "union" `Quick test_uf_union;
          Alcotest.test_case "groups" `Quick test_uf_groups;
          Alcotest.test_case "out of range" `Quick test_uf_out_of_range;
        ] );
      ("union_find props", qc [ prop_uf_union_same; prop_uf_count_invariant ]);
      ( "union_find dynamic",
        [
          Alcotest.test_case "add & union" `Quick test_ufd_add_and_union;
          Alcotest.test_case "copy is independent" `Quick
            test_ufd_copy_independent;
          Alcotest.test_case "unallocated raises" `Quick
            test_ufd_unallocated_raises;
        ] );
      ("union_find dynamic props", qc [ prop_ufd_matches_static ]);
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
        ] );
      ("prng props", qc [ prop_prng_int_range; prop_prng_float_range ]);
    ]
