(* The observability layer's own guarantees: ring wraparound keeps the
   most-recent events, concurrent writers never produce a torn event in
   the merged drain, histogram buckets land on their documented
   boundaries, the exporters emit the exact text the scrapers parse, and
   the two sampling tiers (claim-flag default, detail mode) behave as
   specified.  Finishes with the acceptance property: an anomaly-free
   torture run yields a merged trace whose install spans are balanced and
   whose watchdog fires are attributable to a live install. *)

module T = Telemetry
module E = Telemetry.Event
module J = Mcfi.Benchjson

let with_telemetry ?(detail = false) f =
  T.enable ();
  T.set_detail detail;
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      T.set_detail false;
      T.disable ();
      T.reset ())
    f

(* ------------------------------------------------------------------ *)
(* rings *)

let test_ring_wraparound () =
  with_telemetry (fun () ->
      T.set_ring_capacity 32;
      T.reset ();
      (* force this domain's pool slot to re-mint at the new capacity *)
      Fun.protect
        ~finally:(fun () ->
          T.set_ring_capacity 4096;
          T.reset ())
        (fun () ->
          for i = 0 to 99 do
            T.emit E.Update_begin ~a:i ~b:0 ~c:0
          done;
          let events =
            List.filter (fun e -> e.E.kind = E.Update_begin) (T.drain ())
          in
          (* at most capacity - 1 events survive, and they are exactly the
             most recent ones, in order *)
          Alcotest.(check bool)
            "bounded by capacity - 1" true
            (List.length events <= 31);
          let expected_first = 100 - List.length events in
          List.iteri
            (fun k e ->
              Alcotest.(check int) "most recent, in order"
                (expected_first + k) e.E.a)
            events;
          Alcotest.(check bool) "drops counted" true (T.events_dropped () > 0)))

let test_concurrent_writers () =
  with_telemetry (fun () ->
      (* every event carries a checksum; a torn event (words from two
         different writes) would break it in the merged drain *)
      let writers = 4 and per_writer = 2000 in
      let doms =
        List.init writers (fun w ->
            Domain.spawn (fun () ->
                for i = 1 to per_writer do
                  T.emit E.Check_retry ~a:w ~b:i ~c:((w * 31) + i)
                done))
      in
      List.iter Domain.join doms;
      let events =
        List.filter (fun e -> e.E.kind = E.Check_retry) (T.drain ())
      in
      Alcotest.(check bool) "something survived" true (List.length events > 0);
      List.iter
        (fun e ->
          if e.E.c <> (e.E.a * 31) + e.E.b then
            Alcotest.failf "torn event: a=%d b=%d c=%d" e.E.a e.E.b e.E.c)
        events;
      (* the merged drain is sorted by the global sequence, strictly:
         stamps are unique *)
      let seqs = List.map (fun e -> e.E.seq) events in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "strictly seq-ordered" true (sorted seqs))

(* ------------------------------------------------------------------ *)
(* histograms *)

let test_histogram_buckets () =
  (* bucket 0 holds v < 2; bucket i >= 1 holds 2^i <= v < 2^(i+1) *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b
        (T.Metrics.bucket_of v))
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1023, 9);
      (1024, 10) ];
  Alcotest.(check int) "bucket_hi 0" 1 (T.Metrics.bucket_hi 0);
  Alcotest.(check int) "bucket_hi 3" 15 (T.Metrics.bucket_hi 3);
  with_telemetry (fun () ->
      let h = T.Metrics.histogram "test_boundaries" in
      List.iter (T.Metrics.observe h) [ 1; 2; 3; 4 ];
      let counts = T.Metrics.bucket_counts h in
      Alcotest.(check int) "bucket 0" 1 counts.(0);
      Alcotest.(check int) "bucket 1" 2 counts.(1);
      Alcotest.(check int) "bucket 2" 1 counts.(2);
      let s = T.Metrics.summary h in
      Alcotest.(check int) "count" 4 s.T.Metrics.s_count;
      Alcotest.(check int) "sum" 10 s.T.Metrics.s_sum;
      (* percentiles report a bucket's inclusive upper bound *)
      Alcotest.(check int) "p50" 3 s.T.Metrics.s_p50;
      Alcotest.(check int) "p99" 7 s.T.Metrics.s_p99)

(* ------------------------------------------------------------------ *)
(* exporters *)

let test_prometheus_golden () =
  with_telemetry (fun () ->
      let c = T.Metrics.counter "test_golden_counter" in
      let h = T.Metrics.histogram "test_golden_hist" in
      T.Metrics.add c 7;
      List.iter (T.Metrics.observe h) [ 1; 3; 3 ];
      let text = T.Export.prometheus () in
      let expect_lines =
        [
          "# TYPE test_golden_counter counter";
          "test_golden_counter 7";
          "# TYPE test_golden_hist histogram";
          "test_golden_hist_bucket{le=\"1\"} 1";
          "test_golden_hist_bucket{le=\"3\"} 3";
          "test_golden_hist_bucket{le=\"+Inf\"} 3";
          "test_golden_hist_sum 7";
          "test_golden_hist_count 3";
        ]
      in
      let lines = String.split_on_char '\n' text in
      List.iter
        (fun want ->
          if not (List.mem want lines) then
            Alcotest.failf "missing line %S in:\n%s" want text)
        expect_lines;
      (* the golden histogram block appears contiguously *)
      let rec find = function
        | "# TYPE test_golden_hist histogram" :: rest -> rest
        | _ :: rest -> find rest
        | [] -> Alcotest.fail "histogram block missing"
      in
      match find lines with
      | b1 :: b3 :: binf :: sum :: count :: _ ->
        Alcotest.(check (list string))
          "histogram block"
          [
            "test_golden_hist_bucket{le=\"1\"} 1";
            "test_golden_hist_bucket{le=\"3\"} 3";
            "test_golden_hist_bucket{le=\"+Inf\"} 3";
            "test_golden_hist_sum 7";
            "test_golden_hist_count 3";
          ]
          [ b1; b3; binf; sum; count ]
      | _ -> Alcotest.fail "histogram block truncated")

let test_export_empty_registry () =
  (* Straight after a reset, nothing has fired: the prometheus text must
     contain no metric lines at all (zero-valued registrations are
     omitted), and the JSON document must still parse with empty
     counter/histogram objects. *)
  with_telemetry (fun () ->
      let text = T.Export.prometheus () in
      List.iter
        (fun line ->
          if line <> "" && not (String.starts_with ~prefix:"# " line) then
            Alcotest.failf "empty registry exported %S" line)
        (String.split_on_char '\n' text);
      let doc =
        match J.parse (T.Export.json ()) with
        | Ok j -> j
        | Error m -> Alcotest.failf "empty export does not parse: %s" m
      in
      match (J.path [ "counters" ] doc, J.path [ "histograms" ] doc) with
      | Some _, Some _ -> ()
      | _ -> Alcotest.fail "empty export lacks counters/histograms objects")

let test_export_singleton_registry () =
  (* One counter fired once: exactly that metric appears, with its TYPE
     header, and the JSON agrees on the value. *)
  with_telemetry (fun () ->
      let c = T.Metrics.counter "test_singleton_counter" in
      T.Metrics.incr c;
      let lines = String.split_on_char '\n' (T.Export.prometheus ()) in
      Alcotest.(check bool) "TYPE header present" true
        (List.mem "# TYPE test_singleton_counter counter" lines);
      Alcotest.(check bool) "value line present" true
        (List.mem "test_singleton_counter 1" lines);
      let other_metrics =
        List.filter
          (fun l ->
            l <> "" && (not (String.starts_with ~prefix:"# " l))
            && not (String.starts_with ~prefix:"test_singleton_counter" l))
          lines
      in
      Alcotest.(check (list string)) "no other metrics" [] other_metrics;
      match J.parse (T.Export.json ()) with
      | Error m -> Alcotest.failf "singleton export does not parse: %s" m
      | Ok doc -> begin
        match
          Option.bind (J.path [ "counters"; "test_singleton_counter" ] doc) J.num
        with
        | Some v -> Alcotest.(check (float 0.0)) "json value" 1.0 v
        | None -> Alcotest.fail "singleton counter missing from json"
      end)

let test_json_export_parses () =
  with_telemetry (fun () ->
      let c = T.Metrics.counter "test_json_counter" in
      T.Metrics.incr c;
      T.emit E.Update_begin ~a:1 ~b:2 ~c:3;
      let doc =
        match J.parse (T.Export.json ()) with
        | Ok j -> j
        | Error m -> Alcotest.failf "export does not parse: %s" m
      in
      let num path =
        match Option.bind (J.path path doc) J.num with
        | Some v -> v
        | None ->
          Alcotest.failf "missing %s in %s" (String.concat "." path)
            (T.Export.json ())
      in
      Alcotest.(check (float 0.0)) "counter" 1.0
        (num [ "counters"; "test_json_counter" ]);
      Alcotest.(check (float 0.0)) "emitted" 1.0 (num [ "events"; "emitted" ]))

(* ------------------------------------------------------------------ *)
(* the two sampling tiers *)

let test_claim_flag_sampling () =
  with_telemetry (fun () ->
      (* drain any standing arm (enable + reset both arm the trigger, and
         the first claim's time-gated re-arm re-arms once more) *)
      let rec drain_arms n =
        if n > 0 && T.ctx_sampled (T.check_begin ()) then drain_arms (n - 1)
      in
      drain_arms 10;
      Alcotest.(check bool) "unarmed check is not sampled" false
        (T.ctx_sampled (T.check_begin ()));
      (* a structural event arms the trigger; exactly one check claims it *)
      T.emit E.Update_begin ~a:0 ~b:0 ~c:0;
      let ctx = T.check_begin () in
      Alcotest.(check bool) "first check after an event is sampled" true
        (T.ctx_sampled ctx);
      T.check_end ctx ~outcome:0 ~slot:4 ~target:0x40 ~retries:1;
      let evs =
        List.filter (fun e -> e.E.kind = E.Check_pass) (T.drain ())
      in
      Alcotest.(check bool) "sampled check left a trace event" true
        (List.exists (fun e -> e.E.a = 4 && e.E.b = 0x40 && e.E.c = 1) evs);
      (* disabled: the bracket is free and inert *)
      T.disable ();
      Alcotest.(check int) "disabled ctx" 0 (T.check_begin ());
      T.enable ())

let test_detail_mode_counts () =
  with_telemetry ~detail:true (fun () ->
      for i = 1 to 100 do
        let ctx = T.check_begin () in
        Alcotest.(check bool) "detail ctx is active" true (T.ctx_active ctx);
        let outcome = if i <= 90 then 0 else if i <= 97 then 1 else 2 in
        T.check_end ctx ~outcome ~slot:0 ~target:0
          ~retries:(if i mod 10 = 0 then 2 else 0)
      done;
      let ct = T.check_totals () in
      Alcotest.(check int) "checks" 100 ct.T.cc_checks;
      Alcotest.(check int) "passes" 90 ct.T.cc_passes;
      Alcotest.(check int) "violations" 7 ct.T.cc_violations;
      Alcotest.(check int) "exhausted" 3 ct.T.cc_exhausted;
      Alcotest.(check int) "retries" 20 ct.T.cc_retries;
      T.fast_check ();
      T.fast_check ();
      T.fast_retry ();
      let fc, fr = T.fast_totals () in
      Alcotest.(check int) "fast checks" 2 fc;
      Alcotest.(check int) "fast retries" 1 fr)

(* ------------------------------------------------------------------ *)
(* the acceptance property: a torture run's merged trace is coherent *)

let test_torture_trace_coherent () =
  with_telemetry (fun () ->
      let sc =
        {
          (Stress.default ~seed:0x0B5E7EL) with
          Stress.updates = 400;
          kill_every = 0;
        }
      in
      let r = Stress.run sc in
      Alcotest.(check int) "no anomalies" 0 (List.length r.Stress.rp_anomalies);
      let trace = T.drain () in
      Alcotest.(check bool) "trace is drainable and non-empty" true
        (trace <> []);
      (* every install span is balanced: an Update_begin for version v is
         followed (in global order) by exactly one Update_commit for v *)
      let begins = Hashtbl.create 64 and commits = Hashtbl.create 64 in
      List.iter
        (fun e ->
          match e.E.kind with
          | E.Update_begin ->
            Alcotest.(check bool) "no duplicate begin" false
              (Hashtbl.mem begins e.E.a);
            Hashtbl.replace begins e.E.a e.E.seq
          | E.Update_commit ->
            (match Hashtbl.find_opt begins e.E.a with
            | None -> Alcotest.failf "commit v%d without begin" e.E.a
            | Some bseq ->
              Alcotest.(check bool) "commit after its begin" true
                (bseq < e.E.seq));
            Alcotest.(check bool) "no duplicate commit" false
              (Hashtbl.mem commits e.E.a);
            Hashtbl.replace commits e.E.a e.E.seq
          | _ -> ())
        trace;
      Hashtbl.iter
        (fun v _ ->
          if not (Hashtbl.mem commits v) then
            Alcotest.failf "begin v%d without commit" v)
        begins;
      Alcotest.(check int) "every install traced both ends"
        r.Stress.rp_installs (Hashtbl.length commits);
      (* every watchdog fire happened while some install span was live:
         a begin at a smaller seq whose commit has a larger seq *)
      List.iter
        (fun e ->
          if e.E.kind = E.Watchdog_fire then begin
            let attributable = ref false in
            Hashtbl.iter
              (fun v bseq ->
                match Hashtbl.find_opt commits v with
                | Some cseq when bseq < e.E.seq && e.E.seq < cseq ->
                  attributable := true
                | _ -> ())
              begins;
            if not !attributable then
              Alcotest.failf "watchdog fire #%d not inside any install span"
                e.E.seq
          end)
        trace)

let () =
  Alcotest.run "telemetry"
    [
      ( "rings",
        [
          Alcotest.test_case "wraparound keeps most recent" `Quick
            test_ring_wraparound;
          Alcotest.test_case "concurrent writers" `Quick
            test_concurrent_writers;
        ] );
      ( "histograms",
        [ Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets ]
      );
      ( "exporters",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "empty registry" `Quick test_export_empty_registry;
          Alcotest.test_case "singleton registry" `Quick
            test_export_singleton_registry;
          Alcotest.test_case "json parses" `Quick test_json_export_parses;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "claim-flag default" `Quick
            test_claim_flag_sampling;
          Alcotest.test_case "detail-mode exact counts" `Quick
            test_detail_mode_counts;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "torture trace coherent" `Quick
            test_torture_trace_coherent;
        ] );
    ]
