(* Error-path tests for the Pipeline facade: every failure mode surfaces
   as a rendered, located message rather than an exception from the
   bowels of the toolchain. *)

let fails_with_prefix = Testlib.fails_with_prefix
let build = Testlib.build

let test_lex_error_located () =
  fails_with_prefix "main:1:" (fun () ->
      build [ ("main", "int main() { @ }") ])

let test_parse_error_located () =
  fails_with_prefix "main:" (fun () ->
      build [ ("main", "int main( { return 0; }") ])

let test_type_error_located () =
  fails_with_prefix "main:" (fun () ->
      build [ ("main", "int main() { return zzz; }") ])

let test_unsupported_located () =
  (* aggregate parameters are a documented limitation *)
  fails_with_prefix "main:" (fun () ->
      build
        [ ("main",
           "struct s { int a; };\n\
            int f(struct s v) { return v.a; }\n\
            int main() { return 0; }") ])

let test_missing_main () =
  fails_with_prefix "undefined symbols: main" (fun () ->
      build [ ("aux", "int helper(int x) { return x; }") ])

let test_undefined_symbol_lists_name () =
  fails_with_prefix "undefined symbols: nowhere" (fun () ->
      build [ ("main", "extern int nowhere(int);\n\
                        int main() { return nowhere(1); }") ])

let test_dynamic_requires_instrumented () =
  fails_with_prefix "dynamic linking requires an instrumented build"
    (fun () ->
      Mcfi.Pipeline.build_process ~instrumented:false
        ~sources:
          [ ("main", "extern int p(int); int main() { return p(0); }") ]
        ~dynamic:[ ("plugin", "int p(int x) { return x; }") ]
        ())

let test_duplicate_global () =
  fails_with_prefix "link:" (fun () ->
      build [ ("a", "int shared = 1;"); ("b", "int shared = 2;\nint main() { return 0; }") ])

let test_without_libc () =
  (* freestanding builds work when the program needs no libc *)
  let proc =
    Mcfi.Pipeline.build_process ~with_libc:false
      ~sources:[ ("main", "int main() { return __syscall(1, 7) * 0; }") ]
      ()
  in
  match Mcfi_runtime.Process.run proc with
  | Mcfi_runtime.Machine.Exited 0 ->
    Alcotest.(check string) "printed" "7"
      (Mcfi_runtime.Machine.output (Mcfi_runtime.Process.machine proc))
  | r ->
    Alcotest.failf "freestanding run: %a" Mcfi_runtime.Machine.pp_exit_reason r

let test_sandbox_modes_equal_output () =
  let src =
    {|
int buf[32];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 32; i = i + 1) { buf[i] = i * 3; }
  for (i = 0; i < 32; i = i + 1) { s = s + buf[i]; }
  printf("%d", s);
  return 0;
}|}
  in
  let run sandbox =
    let proc =
      Mcfi.Pipeline.build_process ~sandbox ~sources:[ ("main", src) ] ()
    in
    match Mcfi_runtime.Process.run proc with
    | Mcfi_runtime.Machine.Exited 0 ->
      Mcfi_runtime.Machine.output (Mcfi_runtime.Process.machine proc)
    | r ->
      Alcotest.failf "%s run: %a"
        (Vmisa.Abi.sandbox_name sandbox)
        Mcfi_runtime.Machine.pp_exit_reason r
  in
  Alcotest.(check string) "mask = segment" (run Vmisa.Abi.Mask)
    (run Vmisa.Abi.Segment)

let () =
  Alcotest.run "pipeline"
    [
      ( "error paths",
        [
          Alcotest.test_case "lex error located" `Quick test_lex_error_located;
          Alcotest.test_case "parse error located" `Quick
            test_parse_error_located;
          Alcotest.test_case "type error located" `Quick
            test_type_error_located;
          Alcotest.test_case "unsupported located" `Quick
            test_unsupported_located;
          Alcotest.test_case "missing main" `Quick test_missing_main;
          Alcotest.test_case "undefined symbol named" `Quick
            test_undefined_symbol_lists_name;
          Alcotest.test_case "dynamic needs instrumentation" `Quick
            test_dynamic_requires_instrumented;
          Alcotest.test_case "duplicate global" `Quick test_duplicate_global;
        ] );
      ( "configurations",
        [
          Alcotest.test_case "freestanding build" `Quick test_without_libc;
          Alcotest.test_case "sandbox modes agree" `Quick
            test_sandbox_modes_equal_output;
        ] );
    ]
