(* Tier-1 smoke test for the Benchjson.output_file report: run a
   scaled-down version of everything the `bench json` section does — a
   short oracle-checked dlopen chain and a small install-throughput
   scenario — then assemble the report, round-trip it through the
   emitter and parser, and validate the shape the perf trajectory
   relies on. *)

module J = Mcfi.Benchjson

let get path j =
  match Option.bind (J.path path j) J.num with
  | Some v -> v
  | None -> Alcotest.failf "missing or non-finite %s" (String.concat "." path)

let small_report () =
  let samples = J.dlopen_chain ~modules:4 ~fns:3 ~rounds:1 () in
  let tp =
    Stress.install_throughput ~checkers:2 ~installs:24 ~targets:256 ~slots:256
      ~classes:8 ~seed:0x7e57L ()
  in
  let torture =
    J.Obj
      [
        ("checks", J.Num (float_of_int tp.Stress.tp_checks));
        ("installs", J.Num (float_of_int tp.Stress.tp_installs));
        ("carries", J.Num (float_of_int tp.Stress.tp_carries));
        ( "checks_per_s",
          J.Num (float_of_int tp.Stress.tp_checks /. tp.Stress.tp_elapsed_s) );
        ( "installs_per_s",
          J.Num (float_of_int tp.Stress.tp_installs /. tp.Stress.tp_elapsed_s)
        );
        ( "checks_during_install_per_s",
          J.Num
            (float_of_int tp.Stress.tp_checks_during_install
            /. tp.Stress.tp_install_s) );
      ]
  in
  let telemetry =
    J.Obj
      [
        ("disabled_checks_per_s", J.Num 1e6);
        ("enabled_checks_per_s", J.Num 0.97e6);
        ("throughput_ratio", J.Num 0.97);
        ("overhead_pct", J.Num 3.0);
      ]
  in
  let fuzz =
    J.Obj
      [
        ("iterations", J.Num 40.0);
        ("elapsed_s", J.Num 8.0);
        ("iters_per_s", J.Num 5.0);
      ]
  in
  let fleet =
    J.Obj
      [
        ("tenants", J.Num 16.0);
        ("survival_rate", J.Num 0.94);
        ("kills", J.Num 4.0);
        ("restarts", J.Num 4.0);
        ("quarantined", J.Num 1.0);
        ("recovery_ms_p50", J.Num 3.3);
        ("recovery_ms_p99", J.Num 26.9);
        ("installs_admitted", J.Num 256.0);
        ("installs_served", J.Num 255.0);
        ("installs_shed", J.Num 0.0);
      ]
  in
  let shards =
    J.Obj
      [
        ("stm", J.Str "tml");
        ( "rows",
          J.Arr
            [
              J.Obj
                [
                  ("shards", J.Num 1.0);
                  ("installs_per_s", J.Num 1000.0);
                  ("wedged_installs", J.Num 0.0);
                ];
              J.Obj
                [
                  ("shards", J.Num 4.0);
                  ("installs_per_s", J.Num 2600.0);
                  ("wedged_installs", J.Num 410.0);
                ];
            ] );
        ("scaling", J.Num 2.6);
        ("wedged_confinement", J.Num 410.0);
      ]
  in
  let dispatch =
    J.Obj
      [
        ("tight_check_byte_ns", J.Num 260.0);
        ("tight_check_threaded_ns", J.Num 60.0);
        ("tight_check_speedup", J.Num 4.33);
        ( "rows",
          J.Arr
            [
              J.Obj
                [
                  ("shards", J.Num 1.0);
                  ("byte_checks_per_s", J.Num 3.8e6);
                  ("threaded_checks_per_s", J.Num 16.5e6);
                ];
              J.Obj
                [
                  ("shards", J.Num 4.0);
                  ("byte_checks_per_s", J.Num 3.7e6);
                  ("threaded_checks_per_s", J.Num 16.2e6);
                ];
            ] );
      ]
  in
  let obs =
    J.Obj
      [
        ("flightrec_off_checks_per_s", J.Num 1e6);
        ("flightrec_on_checks_per_s", J.Num 0.98e6);
        ("flightrec_ratio", J.Num 0.98);
        ("snapshot_p99_ns", J.Num 250000.0);
        ("alert_lag_ticks", J.Num 6.0);
      ]
  in
  let redteam =
    J.Obj
      [
        ("sites", J.Num 39.0);
        ("corruptible_sites", J.Num 36.0);
        ("forward_edges", J.Num 48.0);
        ("backward_edges", J.Num 120.0);
        ("sabotage_chains", J.Num 6.0);
        ("sabotage_confirmed", J.Num 6.0);
        ("clean_chains", J.Num 0.0);
        ( "class_histogram",
          J.Arr
            [
              J.Obj [ ("class_size", J.Num 3.0); ("classes", J.Num 2.0) ];
              J.Obj [ ("class_size", J.Num 12.0); ("classes", J.Num 1.0) ];
            ] );
      ]
  in
  J.report ~samples ~torture ~telemetry ~fuzz ~fleet ~shards ~dispatch ~obs
    ~redteam

let test_report_roundtrip_and_validate () =
  let report = small_report () in
  (* the emitted text must re-parse to a report that still validates and
     carries the same numbers *)
  let text = J.to_string report in
  let parsed =
    match J.parse text with
    | Ok j -> j
    | Error m -> Alcotest.failf "re-parse failed: %s" m
  in
  (match J.validate parsed with
  | Ok () -> ()
  | Error m -> Alcotest.failf "validation failed: %s" m);
  Alcotest.(check (float 0.0))
    "modules" 4.0
    (get [ "modules" ] parsed);
  let chain =
    match J.path [ "cfggen"; "chain" ] parsed with
    | Some (J.Arr rows) -> rows
    | _ -> Alcotest.fail "cfggen.chain missing"
  in
  Alcotest.(check int) "chain rows" 4 (List.length chain);
  List.iter
    (fun row ->
      let f = get [ "full_ms" ] row and i = get [ "incr_ms" ] row in
      if f < 0.0 || i < 0.0 then Alcotest.fail "negative timing")
    chain;
  (* required keys, present and finite *)
  List.iter
    (fun p -> ignore (get p parsed))
    [
      [ "cfggen"; "last_full_ms" ];
      [ "cfggen"; "last_incr_ms" ];
      [ "cfggen"; "last_speedup" ];
      [ "torture"; "checks_per_s" ];
      [ "torture"; "installs_per_s" ];
      [ "torture"; "checks_during_install_per_s" ];
      [ "telemetry"; "throughput_ratio" ];
      [ "telemetry"; "overhead_pct" ];
      [ "fuzz"; "iterations" ];
      [ "fuzz"; "iters_per_s" ];
      [ "fleet"; "survival_rate" ];
      [ "fleet"; "recovery_ms_p50" ];
      [ "fleet"; "recovery_ms_p99" ];
      [ "fleet"; "installs_served" ];
      [ "fleet"; "installs_shed" ];
      [ "dispatch"; "tight_check_byte_ns" ];
      [ "dispatch"; "tight_check_threaded_ns" ];
      [ "dispatch"; "tight_check_speedup" ];
      [ "obs"; "flightrec_ratio" ];
      [ "obs"; "snapshot_p99_ns" ];
      [ "obs"; "alert_lag_ticks" ];
      [ "redteam"; "sites" ];
      [ "redteam"; "corruptible_sites" ];
      [ "redteam"; "forward_edges" ];
      [ "redteam"; "backward_edges" ];
      [ "redteam"; "sabotage_chains" ];
      [ "redteam"; "sabotage_confirmed" ];
      [ "redteam"; "clean_chains" ];
    ]

let test_schema_identity () =
  let report = small_report () in
  (* the report is keyed by an explicit schema name + version, and the
     artifact file name is derived from the version (one bump point) *)
  (match J.member "schema" report with
  | Some (J.Str s) -> Alcotest.(check string) "schema" J.schema s
  | _ -> Alcotest.fail "schema field missing");
  Alcotest.(check (float 0.0))
    "schema_version"
    (float_of_int J.schema_version)
    (get [ "schema_version" ] report);
  Alcotest.(check string)
    "output_file derived from version"
    (Printf.sprintf "BENCH_%d.json" J.schema_version)
    J.output_file;
  (* a version bump (or a foreign schema) must fail validation: the
     driver that trends these reports keys on the exact pair *)
  let rekey k v = function
    | J.Obj kvs ->
      J.Obj (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) kvs)
    | j -> j
  in
  (match J.validate (rekey "schema_version" (J.Num (float_of_int (J.schema_version + 1))) report) with
  | Ok () -> Alcotest.fail "validated a bumped schema_version"
  | Error _ -> ());
  match J.validate (rekey "schema" (J.Str "other-bench") report) with
  | Ok () -> Alcotest.fail "validated a foreign schema name"
  | Error _ -> ()

let test_validate_rejects_gaps () =
  let report = small_report () in
  let drop key = function
    | J.Obj kvs -> J.Obj (List.remove_assoc key kvs)
    | j -> j
  in
  (match J.validate (drop "torture" report) with
  | Ok () -> Alcotest.fail "validated without torture section"
  | Error _ -> ());
  (match J.validate (drop "dispatch" report) with
  | Ok () -> Alcotest.fail "validated without dispatch section"
  | Error _ -> ());
  (match J.validate (drop "redteam" report) with
  | Ok () -> Alcotest.fail "validated without redteam section"
  | Error _ -> ());
  (* a NaN serializes as null and must fail validation after re-parse *)
  let poisoned =
    match report with
    | J.Obj kvs ->
      J.Obj
        (List.map
           (function
             | "modules", _ -> ("modules", J.Num Float.nan)
             | kv -> kv)
           kvs)
    | j -> j
  in
  match J.parse (J.to_string poisoned) with
  | Ok j -> (
    match J.validate j with
    | Ok () -> Alcotest.fail "validated a non-finite field"
    | Error _ -> ())
  | Error m -> Alcotest.failf "re-parse failed: %s" m

let test_parser_basics () =
  (match J.parse {| {"a": [1, 2.5, "x\n", true, null], "b": {}} |} with
  | Ok (J.Obj [ ("a", J.Arr [ J.Num 1.0; J.Num 2.5; J.Str "x\n"; J.Bool true; J.Null ]); ("b", J.Obj []) ]) -> ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (J.to_string j)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  match J.parse "{\"a\": 1,}" with
  | Ok _ -> Alcotest.fail "accepted trailing comma"
  | Error _ -> ()

let () =
  Alcotest.run "benchjson"
    [
      ( "report",
        [
          Alcotest.test_case "roundtrip & validate" `Quick
            test_report_roundtrip_and_validate;
          Alcotest.test_case "validation rejects gaps" `Quick
            test_validate_rejects_gaps;
          Alcotest.test_case "schema identity" `Quick test_schema_identity;
          Alcotest.test_case "parser basics" `Quick test_parser_basics;
        ] );
    ]
