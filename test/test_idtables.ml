(* Tests for the ID tables: bit packing (paper Fig. 2), table reads
   (including misaligned ones), transactions (Figs. 3-4), baselines, and a
   linearizability stress test on real domains. *)

open Idtables

(* ---------- ID packing ---------- *)

let test_pack_unpack () =
  let id = Id.pack ~ecn:1234 ~version:567 in
  Alcotest.(check bool) "valid" true (Id.valid id);
  Alcotest.(check int) "ecn" 1234 (Id.ecn id);
  Alcotest.(check int) "version" 567 (Id.version id)

let test_pack_reserved_bits () =
  let id = Id.pack ~ecn:16383 ~version:16383 in
  (* bits 0,8,16,24: 1,0,0,0 *)
  Alcotest.(check int) "bit0" 1 (id land 1);
  Alcotest.(check int) "bit8" 0 ((id lsr 8) land 1);
  Alcotest.(check int) "bit16" 0 ((id lsr 16) land 1);
  Alcotest.(check int) "bit24" 0 ((id lsr 24) land 1)

let test_pack_out_of_range () =
  Alcotest.(check bool) "ecn too big" true
    (match Id.pack ~ecn:16384 ~version:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative version" true
    (match Id.pack ~ecn:0 ~version:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_invalid_id () =
  Alcotest.(check bool) "zero invalid" false (Id.valid Id.invalid)

let test_same_version () =
  let a = Id.pack ~ecn:1 ~version:99 in
  let b = Id.pack ~ecn:2 ~version:99 in
  let c = Id.pack ~ecn:1 ~version:100 in
  Alcotest.(check bool) "same" true (Id.same_version a b);
  Alcotest.(check bool) "diff" false (Id.same_version a c)

let prop_pack_roundtrip =
  QCheck.Test.make ~name:"pack/unpack roundtrip" ~count:1000
    QCheck.(pair (int_bound 16383) (int_bound 16383))
    (fun (ecn, version) ->
      let id = Id.pack ~ecn ~version in
      Id.valid id && Id.ecn id = ecn && Id.version id = version)

let prop_distinct_ids =
  QCheck.Test.make ~name:"distinct fields give distinct ids" ~count:500
    QCheck.(
      pair (pair (int_bound 16383) (int_bound 16383))
        (pair (int_bound 16383) (int_bound 16383)))
    (fun ((e1, v1), (e2, v2)) ->
      let a = Id.pack ~ecn:e1 ~version:v1 in
      let b = Id.pack ~ecn:e2 ~version:v2 in
      (a = b) = (e1 = e2 && v1 = v2))

(* ---------- tables ---------- *)

let mk_tables () = Tables.create ~code_base:0x1000 ~capacity:256 ~bary_slots:8 ()

let test_tary_set_read () =
  let t = mk_tables () in
  let id = Id.pack ~ecn:7 ~version:0 in
  Tables.tary_set t 0x1010 id;
  Alcotest.(check int) "read back" id (Tables.tary_read t 0x1010);
  Alcotest.(check int) "elsewhere invalid" Id.invalid
    (Tables.tary_read t 0x1014)

let test_tary_misaligned_read_invalid () =
  let t = mk_tables () in
  let id = Id.pack ~ecn:7 ~version:3 in
  Tables.tary_set t 0x1010 id;
  Tables.tary_set t 0x1014 (Id.pack ~ecn:8 ~version:3) ;
  (* every misaligned read around valid slots must yield an invalid ID *)
  List.iter
    (fun addr ->
      Alcotest.(check bool)
        (Printf.sprintf "misaligned 0x%x invalid" addr)
        false
        (Id.valid (Tables.tary_read t addr)))
    [ 0x1011; 0x1012; 0x1013; 0x1015 ]

let test_tary_out_of_range () =
  let t = mk_tables () in
  Alcotest.(check int) "below" Id.invalid (Tables.tary_read t 0xfff);
  Alcotest.(check int) "above" Id.invalid (Tables.tary_read t 0x2000)

let test_tary_set_rejects_misaligned () =
  let t = mk_tables () in
  Alcotest.(check bool) "misaligned set" true
    (match Tables.tary_set t 0x1001 (Id.pack ~ecn:0 ~version:0) with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_extend () =
  let t = Tables.create ~code_base:0 ~capacity:64 ~bary_slots:1 () in
  Alcotest.(check int) "initial" 64 (Tables.code_size t);
  Alcotest.(check bool) "beyond capacity" true
    (match Tables.extend t 100 with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ---------- transactions ---------- *)

let install t =
  (* two equivalence classes: returns-of-f (ecn 0) and callbacks (ecn 1) *)
  Tx.update t
    ~tary:[ (0x1000, 0); (0x1004, 1); (0x1010, 0) ]
    ~bary:[ (0, 0); (1, 1) ]

let test_check_pass () =
  let t = mk_tables () in
  ignore (install t);
  Alcotest.(check bool) "allowed" true
    (Tx.check t ~bary_index:0 ~target:0x1000 = Tx.Pass);
  Alcotest.(check bool) "allowed same class" true
    (Tx.check t ~bary_index:0 ~target:0x1010 = Tx.Pass)

let test_check_wrong_class () =
  let t = mk_tables () in
  ignore (install t);
  Alcotest.(check bool) "cross-class violation" true
    (Tx.check t ~bary_index:0 ~target:0x1004 = Tx.Violation)

let test_check_invalid_target () =
  let t = mk_tables () in
  ignore (install t);
  Alcotest.(check bool) "non-target violation" true
    (Tx.check t ~bary_index:0 ~target:0x1020 = Tx.Violation);
  Alcotest.(check bool) "misaligned violation" true
    (Tx.check t ~bary_index:0 ~target:0x1001 = Tx.Violation)

let test_update_bumps_version () =
  let t = mk_tables () in
  let v1 = install t in
  let v2 = install t in
  Alcotest.(check int) "monotone" (v1 + 1) v2;
  Alcotest.(check int) "ids carry version" v2
    (Id.version (Tables.tary_read t 0x1000))

let test_update_clears_stale_entries () =
  let t = mk_tables () in
  ignore (install t);
  ignore (Tx.update t ~tary:[ (0x1000, 0) ] ~bary:[ (0, 0) ]);
  Alcotest.(check bool) "0x1004 no longer a target" true
    (Tx.check t ~bary_index:0 ~target:0x1004 = Tx.Violation)

let test_check_retries_on_version_skew () =
  (* Freeze a half-finished update: Tary has the new version but Bary still
     has the old one.  The check transaction must retry, not report a
     violation; with bounded fuel it reports Retries_exhausted. *)
  let t = mk_tables () in
  ignore (install t);
  let stale_bid = Tables.bary_read t 0 in
  (* manually advance only Tary, as if an updater were preempted *)
  Tables.set_version t (Tables.version t + 1);
  let v = Tables.version t in
  Tables.tary_set t 0x1000 (Id.pack ~ecn:0 ~version:v);
  Tables.bary_set t 0 stale_bid;
  let retries = ref 0 in
  let r =
    Tx.check t ~max_retries:5
      ~on_retry:(fun () -> incr retries)
      ~bary_index:0 ~target:0x1000
  in
  Alcotest.(check bool) "exhausted" true (r = Tx.Retries_exhausted);
  Alcotest.(check int) "retried 5 times" 5 !retries;
  (* finish the update: check passes again *)
  Tables.bary_set t 0 (Id.pack ~ecn:0 ~version:v);
  Alcotest.(check bool) "passes after completion" true
    (Tx.check t ~bary_index:0 ~target:0x1000 = Tx.Pass)

(* Pin the retry budget semantics: [~max_retries:n] = the initial attempt
   plus at most [n] retries, so [~max_retries:0] means "no retries" and
   [on_retry] never fires. *)
let test_zero_max_retries_means_no_retry () =
  let t = mk_tables () in
  ignore (install t);
  (* skew the tables: Tary at a new version, Bary stale *)
  let stale_bid = Tables.bary_read t 0 in
  Tables.set_version t (Tables.version t + 1);
  let v = Tables.version t in
  Tables.tary_set t 0x1000 (Id.pack ~ecn:0 ~version:v);
  Tables.bary_set t 0 stale_bid;
  let retries = ref 0 in
  let r =
    Tx.check t ~max_retries:0
      ~on_retry:(fun () -> incr retries)
      ~bary_index:0 ~target:0x1000
  in
  Alcotest.(check bool) "exhausted immediately" true (r = Tx.Retries_exhausted);
  Alcotest.(check int) "zero retries" 0 !retries;
  (* on consistent tables a zero budget is irrelevant *)
  Tables.bary_set t 0 (Id.pack ~ecn:0 ~version:v);
  Alcotest.(check bool) "passes with zero budget" true
    (Tx.check t ~max_retries:0 ~bary_index:0 ~target:0x1000 = Tx.Pass)

let test_refresh_preserves_ecns () =
  let t = mk_tables () in
  ignore (install t);
  let before = Tables.tary_entries t in
  let v = Tx.refresh t in
  let after = Tables.tary_entries t in
  Alcotest.(check int) "same entry count" (List.length before)
    (List.length after);
  List.iter2
    (fun (a1, id1) (a2, id2) ->
      Alcotest.(check int) "same addr" a1 a2;
      Alcotest.(check int) "same ecn" (Id.ecn id1) (Id.ecn id2);
      Alcotest.(check int) "new version" v (Id.version id2))
    before after

let test_got_update_hook_runs_between_phases () =
  let t = mk_tables () in
  let observed = ref None in
  ignore
    (Tx.update t
       ~got_update:(fun () ->
         (* during the hook, Tary must already carry the new version *)
         observed := Some (Id.version (Tables.tary_read t 0x1000)))
       ~tary:[ (0x1000, 0) ] ~bary:[ (0, 0) ]);
  Alcotest.(check bool) "hook saw new tary" true
    (!observed = Some (Tables.version t))

(* ---------- the ABA guard and version wraparound (§5.2) ---------- *)

let test_aba_guard_trips () =
  let t = mk_tables () in
  (* drive the update counter to the limit without quiescence *)
  Alcotest.(check bool) "exhausts" true
    (match
       for _ = 1 to Id.max_version do
         ignore (Tx.update t ~tary:[ (0x1000, 0) ] ~bary:[ (0, 0) ])
       done
     with
    | () -> false
    | exception Tx.Version_space_exhausted -> true)

let test_aba_guard_reset_by_quiescence () =
  let t = mk_tables () in
  for _ = 1 to 100 do
    ignore (Tx.update t ~tary:[ (0x1000, 0) ] ~bary:[ (0, 0) ]);
    (* the runtime observes all threads at a syscall: reset *)
    Tables.quiesce t
  done;
  Alcotest.(check int) "counter stays low" 0 (Tables.updates_since_quiesce t)

let test_version_wraparound_is_safe () =
  (* 2^14 versions wrap; checks must still pass on consistent tables *)
  let t = mk_tables () in
  Tables.set_version t (Id.max_version - 1);
  ignore (install t);
  Alcotest.(check int) "wrapped to 0" 0 (Tables.version t);
  Alcotest.(check bool) "still passes" true
    (Tx.check t ~bary_index:0 ~target:0x1000 = Tx.Pass);
  ignore (install t);
  Alcotest.(check int) "then 1" 1 (Tables.version t);
  Alcotest.(check bool) "passes after wrap" true
    (Tx.check t ~bary_index:0 ~target:0x1000 = Tx.Pass)

(* ---------- baselines agree with MCFI semantics ---------- *)

let baseline_agreement (module B : Tx_baselines.S) =
  let prng = Mcfi_util.Prng.create 99L in
  let base = 0x1000 in
  let mcfi = Tables.create ~code_base:base ~capacity:256 ~bary_slots:8 () in
  let b = B.create ~code_base:base ~capacity:256 ~bary_slots:8 in
  for _round = 1 to 20 do
    (* random CFG over 8 aligned targets and 4 branch slots *)
    let tary =
      List.init 8 (fun k -> (base + (4 * k), Mcfi_util.Prng.int prng 3))
      |> List.filter (fun _ -> Mcfi_util.Prng.bool prng)
    in
    let bary = List.init 4 (fun k -> (k, Mcfi_util.Prng.int prng 3)) in
    ignore (Tx.update mcfi ~tary ~bary);
    B.update b ~tary ~bary;
    for _query = 1 to 50 do
      let bary_index = Mcfi_util.Prng.int prng 4 in
      let target = base + Mcfi_util.Prng.int prng 64 in
      let expected = Tx.check mcfi ~bary_index ~target = Tx.Pass in
      let got = B.check b ~bary_index ~target in
      if got <> expected then
        Alcotest.failf "%s disagrees at slot %d target 0x%x" B.name bary_index
          target
    done
  done

let test_baselines_agree () =
  baseline_agreement (module Tx_baselines.Tml);
  baseline_agreement (module Tx_baselines.Rwlock);
  baseline_agreement (module Tx_baselines.Cas_mutex);
  baseline_agreement (module Tx_baselines.Mcfi)

(* ---------- concurrency: linearizability smoke test ---------- *)

(* Checkers run on domains while an updater flips between two CFGs. Every
   check outcome must be explainable by one of the two installed CFGs —
   never a mixture (the paper's §5.2 linearizability argument). CFG A maps
   branch 0 to target set {0x1000}; CFG B maps it to {0x1004}. A mixed
   state would let a check pass for both or neither in the same snapshot
   version; we assert that each Pass matches the CFG of the version the
   passing IDs carry. *)
let test_concurrent_check_update () =
  let t = Tables.create ~code_base:0x1000 ~capacity:128 ~bary_slots:2 () in
  let cfg_a () = Tx.update t ~tary:[ (0x1000, 0) ] ~bary:[ (0, 0) ] in
  let cfg_b () = Tx.update t ~tary:[ (0x1004, 1) ] ~bary:[ (0, 1) ] in
  ignore (cfg_a ());
  let stop = Atomic.make false in
  let anomalies = Atomic.make 0 in
  let checker () =
    while not (Atomic.get stop) do
      (* in any quiescent or transitional state, exactly one of the two
         targets may pass; both passing would be a CFG mixture *)
      let a = Tx.check t ~max_retries:10000 ~bary_index:0 ~target:0x1000 in
      let b = Tx.check t ~max_retries:10000 ~bary_index:0 ~target:0x1004 in
      if a = Tx.Pass && b = Tx.Pass then Atomic.incr anomalies
    done
  in
  let updater () =
    for i = 1 to 500 do
      if i mod 2 = 0 then ignore (cfg_a ()) else ignore (cfg_b ())
    done;
    Atomic.set stop true
  in
  let d1 = Domain.spawn checker in
  let d2 = Domain.spawn checker in
  let d3 = Domain.spawn updater in
  Domain.join d1;
  Domain.join d2;
  Domain.join d3;
  Alcotest.(check int) "no mixed-CFG passes" 0 (Atomic.get anomalies)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "idtables"
    [
      ( "id",
        [
          Alcotest.test_case "pack/unpack" `Quick test_pack_unpack;
          Alcotest.test_case "reserved bits" `Quick test_pack_reserved_bits;
          Alcotest.test_case "out of range" `Quick test_pack_out_of_range;
          Alcotest.test_case "invalid" `Quick test_invalid_id;
          Alcotest.test_case "same_version" `Quick test_same_version;
        ] );
      ("id props", qc [ prop_pack_roundtrip; prop_distinct_ids ]);
      ( "tables",
        [
          Alcotest.test_case "set/read" `Quick test_tary_set_read;
          Alcotest.test_case "misaligned read" `Quick
            test_tary_misaligned_read_invalid;
          Alcotest.test_case "out of range" `Quick test_tary_out_of_range;
          Alcotest.test_case "misaligned set" `Quick
            test_tary_set_rejects_misaligned;
          Alcotest.test_case "extend" `Quick test_extend;
        ] );
      ( "tx",
        [
          Alcotest.test_case "pass" `Quick test_check_pass;
          Alcotest.test_case "wrong class" `Quick test_check_wrong_class;
          Alcotest.test_case "invalid target" `Quick test_check_invalid_target;
          Alcotest.test_case "version bump" `Quick test_update_bumps_version;
          Alcotest.test_case "stale cleared" `Quick
            test_update_clears_stale_entries;
          Alcotest.test_case "retry on skew" `Quick
            test_check_retries_on_version_skew;
          Alcotest.test_case "max_retries:0 = no retries" `Quick
            test_zero_max_retries_means_no_retry;
          Alcotest.test_case "refresh" `Quick test_refresh_preserves_ecns;
          Alcotest.test_case "got hook" `Quick
            test_got_update_hook_runs_between_phases;
        ] );
      ( "aba & wraparound",
        [
          Alcotest.test_case "guard trips" `Quick test_aba_guard_trips;
          Alcotest.test_case "quiescence resets" `Quick
            test_aba_guard_reset_by_quiescence;
          Alcotest.test_case "version wraparound" `Quick
            test_version_wraparound_is_safe;
        ] );
      ( "baselines",
        [ Alcotest.test_case "agree with MCFI" `Quick test_baselines_agree ] );
      ( "concurrency",
        [
          Alcotest.test_case "check/update linearizability" `Quick
            test_concurrent_check_update;
        ] );
    ]
