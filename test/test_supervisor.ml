(* Tier-1 tests for the fleet supervisor: the per-tenant health state
   machine (every legal transition, restart budgets, the circuit
   breaker), the seeded-jitter backoff schedule, tenant-scoped fault
   plans, and — as the acceptance gate — a seeded chaos fleet run whose
   every check is validated by the epoch-history oracle. *)

module H = Supervisor.Health
module FT = Faults.Tenant
module Fl = Supervisor.Fleet

let state = Alcotest.testable H.pp_state ( = )

(* A small, fast policy: transitions within a handful of ticks. *)
let policy =
  {
    H.default_policy with
    p_start_ticks = 2;
    p_heal_ticks = 2;
    p_degrade_exhausted = 2;
    p_degrade_retries = 100;
    p_stall_ticks = 3;
    p_breaker_ticks = 4;
    p_restart_budget = 2;
    p_budget_window = 100;
    p_backoff_base = 2;
    p_backoff_cap = 3;
  }

(* Drive a machine with a monotone clock and an always-advancing epoch
   (so the stall detector stays quiet unless a test wants it). *)
type clock = { mutable now : int; mutable epoch : int }

let clock () = { now = 0; epoch = 0 }

let tick ?(crashed = false) ?(exhausted = 0) ?(retries = 0) ?(stall = false) c h
    =
  c.now <- c.now + 1;
  if not stall then c.epoch <- c.epoch + 1;
  H.tick h ~now:c.now
    {
      (H.quiet ~epoch:c.epoch) with
      s_crashed = crashed;
      s_exhausted = exhausted;
      s_retries = retries;
    }

(* Tick quietly until the machine reports [target] or [fuel] runs out. *)
let run_to ?(fuel = 64) c h target =
  let rec go fuel =
    if H.state h = target then ()
    else if fuel = 0 then
      Alcotest.failf "never reached %s (stuck in %s)" (H.state_name target)
        (H.state_name (H.state h))
    else begin
      ignore (tick c h);
      go (fuel - 1)
    end
  in
  go fuel

(* ---- legal transitions, one by one ---- *)

let test_starting_to_healthy () =
  let c = clock () in
  let h = H.create policy in
  Alcotest.check state "born starting" H.Starting (H.state h);
  run_to ~fuel:(policy.H.p_start_ticks + 2) c h H.Healthy;
  Alcotest.(check int) "attempt reset when healthy" 0 (H.restart_attempt h)

let test_healthy_degraded_healed () =
  let c = clock () in
  let h = H.create policy in
  run_to c h H.Healthy;
  let was, is = tick ~exhausted:policy.H.p_degrade_exhausted c h in
  Alcotest.check state "trouble degrades (from)" H.Healthy was;
  Alcotest.check state "trouble degrades (to)" H.Degraded is;
  run_to ~fuel:(policy.H.p_heal_ticks + 2) c h H.Healthy

let test_breaker_quarantines_sustained_degraded () =
  let c = clock () in
  let h = H.create policy in
  run_to c h H.Healthy;
  let rec storm fuel =
    if H.state h = H.Quarantined then fuel
    else if fuel = 0 then Alcotest.fail "breaker never tripped"
    else begin
      ignore (tick ~exhausted:policy.H.p_degrade_exhausted c h);
      storm (fuel - 1)
    end
  in
  ignore (storm (policy.H.p_breaker_ticks + 2));
  (* absorbing, bar retire: neither calm nor crash leaves it *)
  ignore (tick c h);
  Alcotest.check state "quarantine absorbs calm" H.Quarantined (H.state h);
  ignore (tick ~crashed:true c h);
  Alcotest.check state "quarantine absorbs crash" H.Quarantined (H.state h)

let test_wedge_degrades () =
  let c = clock () in
  let h = H.create policy in
  run_to c h H.Healthy;
  (* a stalled reader epoch is trouble once it persists p_stall_ticks *)
  for _ = 1 to policy.H.p_stall_ticks + 1 do
    ignore (tick ~stall:true c h)
  done;
  Alcotest.check state "stalled epoch degrades" H.Degraded (H.state h)

let test_crash_restart_cycle () =
  let c = clock () in
  let h = H.create policy in
  run_to c h H.Healthy;
  let was, is = tick ~crashed:true c h in
  Alcotest.check state "crash (from)" H.Healthy was;
  Alcotest.check state "crash (to)" H.Restarting is;
  Alcotest.(check int) "first attempt" 1 (H.restart_attempt h);
  Alcotest.(check int) "one restart in window" 1 (H.restarts_in_window h);
  let delay = H.last_restart_delay h in
  Alcotest.(check bool) "positive backoff" true (delay >= 1);
  (* waits out the backoff, then relaunches through Starting *)
  run_to ~fuel:(delay + policy.H.p_start_ticks + 3) c h H.Healthy

let test_budget_exhaustion_quarantines () =
  let c = clock () in
  let h = H.create policy in
  run_to c h H.Healthy;
  (* burn the whole window budget with back-to-back crashes *)
  let restarts = ref 0 in
  let rec crash fuel =
    if H.state h = H.Quarantined then ()
    else if fuel = 0 then Alcotest.fail "budget never exhausted"
    else begin
      (match tick ~crashed:true c h with
      | _, H.Restarting -> incr restarts
      | _ -> ());
      (* let any scheduled restart play out before crashing again *)
      let rec settle fuel =
        match H.state h with
        | H.Restarting when fuel > 0 ->
          ignore (tick c h);
          settle (fuel - 1)
        | _ -> ()
      in
      settle 32;
      crash (fuel - 1)
    end
  in
  crash 16;
  Alcotest.(check int)
    "exactly the budget was spent" policy.H.p_restart_budget !restarts

let test_budget_window_rolls () =
  let c = clock () in
  let h = H.create policy in
  run_to c h H.Healthy;
  (* spend the budget, recovering fully between crashes *)
  for _ = 1 to policy.H.p_restart_budget do
    ignore (tick ~crashed:true c h);
    run_to c h H.Healthy
  done;
  Alcotest.(check int)
    "window full" policy.H.p_restart_budget (H.restarts_in_window h);
  (* a quiet stretch longer than the window replenishes it *)
  for _ = 1 to policy.H.p_budget_window + 1 do
    ignore (tick c h)
  done;
  let _, is = tick ~crashed:true c h in
  Alcotest.check state "budget replenished" H.Restarting is

let test_retire_and_decree () =
  let h = H.create policy in
  let was, is = H.retire h in
  Alcotest.check state "retire (from)" H.Starting was;
  Alcotest.check state "retire (to)" H.Dead is;
  ignore (H.quarantine h);
  Alcotest.check state "dead absorbs decree" H.Dead (H.state h);
  let h2 = H.create policy in
  let was, is = H.quarantine h2 in
  Alcotest.check state "decree (from)" H.Starting was;
  Alcotest.check state "decree (to)" H.Quarantined is

let test_escalation_ladder () =
  let esc s = H.escalation_of s in
  List.iter
    (fun s ->
      let expected =
        match s with
        | H.Starting | H.Healthy -> Idtables.Tx.Wait_for_updater
        | _ -> Idtables.Tx.Fail_check
      in
      Alcotest.(check bool)
        (Printf.sprintf "escalation of %s" (H.state_name s))
        true
        (esc s = expected))
    H.all_states

let test_state_codes_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.check state "code roundtrip" s (H.state_of_code (H.state_code s)))
    H.all_states

(* ---- backoff schedule ---- *)

let test_backoff_schedule () =
  (* unjittered: pure capped exponential *)
  List.iter
    (fun (attempt, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "attempt %d" attempt)
        expect
        (H.restart_delay_preview policy attempt))
    [ (1, 2); (2, 4); (3, 8); (4, 16); (5, 16); (9, 16) ];
  (* jittered: deterministic per seed, bounded in [d, 2d) *)
  let schedule seed =
    let prng = Mcfi_util.Prng.create seed in
    List.init 16 (fun i -> H.restart_delay_preview policy ~prng (i + 1))
  in
  Alcotest.(check (list int))
    "same seed, same schedule" (schedule 0xBACC0FFL) (schedule 0xBACC0FFL);
  Alcotest.(check bool)
    "different seed diverges" true
    (schedule 0xBACC0FFL <> schedule 0xD1FFL);
  let prng = Mcfi_util.Prng.create 99L in
  for attempt = 1 to 12 do
    let base = H.restart_delay_preview policy attempt in
    let d = H.restart_delay_preview policy ~prng attempt in
    if d < base || d >= 2 * base then
      Alcotest.failf "attempt %d: jittered delay %d outside [%d, %d)" attempt d
        base (2 * base)
  done

(* ---- tenant-scoped fault plans ---- *)

let test_tenant_at_fires_once () =
  let armed = FT.arm [ FT.At { tenant = 3; action = Kill_install; hit = 2 } ] in
  Alcotest.(check bool)
    "other tenants never fire" true
    (List.for_all
       (fun _ -> FT.crossing armed ~tenant:5 = None)
       (List.init 8 Fun.id));
  Alcotest.(check bool) "hit 1 quiet" true (FT.crossing armed ~tenant:3 = None);
  Alcotest.(check bool)
    "hit 2 fires" true
    (FT.crossing armed ~tenant:3 = Some FT.Kill_install);
  Alcotest.(check bool)
    "one-shot" true
    (List.for_all
       (fun _ -> FT.crossing armed ~tenant:3 = None)
       (List.init 8 Fun.id))

let test_tenant_random_replays () =
  let draw () =
    let armed =
      FT.arm [ FT.Random { seed = 0xCAFEL; one_in = 5; action = Slow_tenant } ]
    in
    List.init 4 (fun tenant ->
        List.init 200 (fun _ -> FT.crossing armed ~tenant <> None))
  in
  let a = draw () and b = draw () in
  Alcotest.(check bool) "same seed replays exactly" true (a = b);
  let fired = List.concat a |> List.filter Fun.id |> List.length in
  Alcotest.(check bool)
    "plausible firing rate" true
    (fired > 0 && fired < 800);
  (* per-tenant streams differ: not every tenant sees the same pattern *)
  match a with
  | s0 :: rest ->
    Alcotest.(check bool)
      "streams are per-tenant" true
      (List.exists (fun s -> s <> s0) rest)
  | [] -> assert false

(* ---- the acceptance gate: seeded chaos fleets ---- *)

let check_fleet r =
  if not (Fl.ok r) then
    Alcotest.failf "fleet run failed:@.%a" Fl.pp_report r;
  Alcotest.(check int) "every killed tenant recovered" 0 r.Fl.fr_unrecovered;
  Alcotest.(check bool) "final quiescence reached" true r.Fl.fr_final_quiesce;
  Alcotest.(check bool)
    "oracle-validated checks ran" true
    (r.Fl.fr_checks > 0 && r.Fl.fr_passes > 0);
  Alcotest.(check bool)
    "installs were served" true
    (r.Fl.fr_served > 0)

let test_fleet_smoke () =
  let r = Fl.run (Fl.smoke ~seed:11L) in
  check_fleet r;
  (* the smoke chaos schedule is deterministic: tenant 3 is killed
     mid-install, tenant 7 wedges its reader *)
  Alcotest.(check bool) "the scripted kill fired" true (r.Fl.fr_kills >= 1);
  Alcotest.(check bool)
    "the wedged tenant was contained" true
    (r.Fl.fr_quarantined >= 1)

let test_fleet_chaos () =
  let cfg = Fl.default ~seed:0xC4A05L in
  Alcotest.(check bool) "acceptance scale" true (cfg.Fl.fc_tenants >= 64);
  let r = Fl.run cfg in
  check_fleet r;
  Alcotest.(check bool) "chaos actually killed tenants" true (r.Fl.fr_kills > 0);
  Alcotest.(check bool)
    "survival rate accounted" true
    (r.Fl.fr_survival_rate >= 0.0 && r.Fl.fr_survival_rate <= 1.0)

(* ---- sharded fleets: fault domains and the per-shard breaker ---- *)

let test_fleet_sharded () =
  List.iter
    (fun stm ->
      let cfg = { (Fl.smoke ~seed:21L) with Fl.fc_shards = 2; fc_stm = stm } in
      let r = Fl.run cfg in
      check_fleet r;
      Alcotest.(check int) "per-shard install tallies" 2
        (Array.length r.Fl.fr_shard_installs);
      Alcotest.(check int) "per-shard served tallies" 2
        (Array.length r.Fl.fr_shard_served);
      (* tenants are homed id mod shards, so both shards carry load *)
      Array.iteri
        (fun i n ->
          if n < 1 then Alcotest.failf "shard %d served nothing" i)
        r.Fl.fr_shard_served;
      Alcotest.(check int) "no shard quarantined" 0 r.Fl.fr_shards_quarantined)
    Idtables.Stm.all

let test_shard_breaker_confines () =
  (* hammer shard 1's tenants (ids 1, 3, 5 under 2 shards) with
     mid-install kills until the shard breaker trips; shard 0's tenants
     must keep serving, untouched by the quarantine *)
  let seed = 31L in
  let cfg =
    {
      (Fl.smoke ~seed) with
      Fl.fc_shards = 2;
      fc_shard_breaker = 3;
      fc_churn_every = 0;
      fc_chaos =
        [
          FT.At { tenant = 1; action = Kill_install; hit = 2 };
          FT.At { tenant = 3; action = Kill_install; hit = 2 };
          FT.At { tenant = 5; action = Kill_install; hit = 2 };
        ];
    }
  in
  let r = Fl.run cfg in
  if not (Fl.ok r) then Alcotest.failf "fleet run failed:@.%a" Fl.pp_report r;
  Alcotest.(check int) "three kills landed" 3 r.Fl.fr_kills;
  Alcotest.(check int) "exactly one shard quarantined" 1
    r.Fl.fr_shards_quarantined;
  (* the quarantined shard shed only its own tenants: every shard-1
     tenant is quarantined or dead, while shard 0 kept its full
     complement serving installs to the end *)
  Alcotest.(check bool) "the rotten shard's tenants were shed" true
    (r.Fl.fr_quarantined >= 1);
  Alcotest.(check bool) "the healthy shard kept serving" true
    (r.Fl.fr_shard_served.(0) > 0);
  Alcotest.(check bool) "final quiescence despite the quarantine" true
    r.Fl.fr_final_quiesce

let () =
  Alcotest.run "supervisor"
    [
      ( "health",
        [
          Alcotest.test_case "starting to healthy" `Quick
            test_starting_to_healthy;
          Alcotest.test_case "degrade and heal" `Quick
            test_healthy_degraded_healed;
          Alcotest.test_case "breaker quarantines" `Quick
            test_breaker_quarantines_sustained_degraded;
          Alcotest.test_case "wedge degrades" `Quick test_wedge_degrades;
          Alcotest.test_case "crash restart cycle" `Quick
            test_crash_restart_cycle;
          Alcotest.test_case "budget exhaustion quarantines" `Quick
            test_budget_exhaustion_quarantines;
          Alcotest.test_case "budget window rolls" `Quick
            test_budget_window_rolls;
          Alcotest.test_case "retire and decree" `Quick test_retire_and_decree;
          Alcotest.test_case "escalation ladder" `Quick test_escalation_ladder;
          Alcotest.test_case "state codes roundtrip" `Quick
            test_state_codes_roundtrip;
        ] );
      ( "backoff",
        [ Alcotest.test_case "seeded schedule" `Quick test_backoff_schedule ] );
      ( "tenant faults",
        [
          Alcotest.test_case "At fires exactly once" `Quick
            test_tenant_at_fires_once;
          Alcotest.test_case "Random replays from seed" `Quick
            test_tenant_random_replays;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "smoke under scripted chaos" `Quick
            test_fleet_smoke;
          Alcotest.test_case "64-tenant chaos acceptance" `Slow
            test_fleet_chaos;
          Alcotest.test_case "sharded fleet, all STM variants" `Quick
            test_fleet_sharded;
          Alcotest.test_case "shard breaker confines the blast" `Quick
            test_shard_breaker_confines;
        ] );
    ]
