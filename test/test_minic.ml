(* Unit and property tests for the MiniC front end: lexer, parser,
   structural type equivalence, and type checker. *)

open Minic

let parse src = Parser.parse ~name:"test" src
let check src = Typecheck.check (parse src)

let typechecks src =
  match check src with
  | _ -> true
  | exception (Typecheck.Error _ | Parser.Error _ | Lexer.Error _) -> false

let rejects src = not (typechecks src)

(* ---------- lexer ---------- *)

let test_lex_basic () =
  let toks = Lexer.tokenize "int x = 42; // comment\n x->f" in
  let kinds = List.map fst toks in
  Alcotest.(check bool)
    "token stream" true
    (kinds
    = Token.
        [
          KINT; IDENT "x"; ASSIGN; INT_LIT 42; SEMI; IDENT "x"; ARROW;
          IDENT "f"; EOF;
        ])

let test_lex_literals () =
  let toks = Lexer.tokenize "0x1f 'a' '\\n' \"hi\\t\"" in
  Alcotest.(check bool)
    "literals" true
    (List.map fst toks
    = Token.[ INT_LIT 31; CHAR_LIT 'a'; CHAR_LIT '\n'; STR_LIT "hi\t"; EOF ])

let test_lex_operators () =
  let toks = Lexer.tokenize "<< >> <= >= == != && || ... -> ." in
  Alcotest.(check bool)
    "operators" true
    (List.map fst toks
    = Token.[ SHL; SHR; LE; GE; EQEQ; NE; ANDAND; OROR; ELLIPSIS; ARROW;
              DOT; EOF ])

let test_lex_block_comment () =
  let toks = Lexer.tokenize "a /* b \n c */ d" in
  Alcotest.(check int) "two idents" 3 (List.length toks)

let test_lex_error () =
  match Lexer.tokenize "@" with
  | exception Lexer.Error (msg, loc) ->
    Alcotest.(check string) "message" "unexpected character '@'" msg;
    Alcotest.(check int) "line" 1 loc.Ast.line
  | _ -> Alcotest.fail "expected a lexer error"

(* ---------- parser: declarators ---------- *)

let global_ty src name =
  let prog = parse src in
  List.find_map
    (function
      | Ast.Dglobal (t, n, _) when n = name -> Some t
      | _ -> None)
    prog.Ast.pdecls
  |> Option.get

let test_declarator_ptr () =
  Alcotest.(check string)
    "int *p" "int*"
    (Ast.ty_to_string (global_ty "int *p;" "p"))

let test_declarator_array_of_ptr () =
  let t = global_ty "int *a[3];" "a" in
  Alcotest.(check bool) "array of ptr" true (t = Ast.Tarray (Tptr Tint, 3))

let test_declarator_fptr () =
  let t = global_ty "int (*f)(int, char*);" "f" in
  Alcotest.(check bool)
    "fptr" true
    (t
    = Ast.Tptr
        (Tfun { params = [ Tint; Tptr Tchar ]; varargs = false; ret = Tint }))

let test_declarator_fptr_array () =
  let t = global_ty "int (*table[4])(int);" "table" in
  Alcotest.(check bool)
    "fptr array" true
    (t
    = Ast.Tarray
        (Tptr (Tfun { params = [ Tint ]; varargs = false; ret = Tint }), 4))

let test_declarator_fun_returning_ptr () =
  (* a prototype: int *f(int); *)
  let prog = parse "int *f(int);" in
  match prog.Ast.pdecls with
  | [ Ast.Dextern_fun ("f", ft) ] ->
    Alcotest.(check bool)
      "ret ptr" true
      (ft = { Ast.params = [ Tint ]; varargs = false; ret = Tptr Tint })
  | _ -> Alcotest.fail "expected a prototype"

let test_varargs_proto () =
  let prog = parse "int printf(char *fmt, ...);" in
  match prog.Ast.pdecls with
  | [ Ast.Dextern_fun ("printf", ft) ] ->
    Alcotest.(check bool) "varargs" true ft.Ast.varargs
  | _ -> Alcotest.fail "expected a prototype"

let test_parse_struct_typedef () =
  let prog =
    parse
      "struct point { int x; int y; };\n\
       typedef struct point point;\n\
       point *origin;"
  in
  Alcotest.(check int) "three decls" 3 (List.length prog.Ast.pdecls)

let test_parse_function () =
  let prog = parse "int add(int a, int b) { return a + b; }" in
  match prog.Ast.pdecls with
  | [ Ast.Dfun f ] ->
    Alcotest.(check string) "name" "add" f.Ast.fname;
    Alcotest.(check int) "params" 2 (List.length f.Ast.fparams)
  | _ -> Alcotest.fail "expected a function"

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  let e = Parser.parse_expr "1 + 2 * 3" in
  match e.Ast.edesc with
  | Ast.Ebinop (Ast.Add, _, { edesc = Ast.Ebinop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "wrong precedence"

let test_parse_assoc () =
  (* a = b = c is right-associative *)
  let e = Parser.parse_expr "a = b = c" in
  match e.Ast.edesc with
  | Ast.Eassign (_, { edesc = Ast.Eassign (_, _); _ }) -> ()
  | _ -> Alcotest.fail "assignment should be right-associative"

let test_parse_switch () =
  let prog =
    parse
      "int f(int x) {\n\
      \  switch (x) {\n\
      \    case 1: case 2: return 10;\n\
      \    case 3: return 20;\n\
      \    default: return 0;\n\
      \  }\n\
       }"
  in
  match prog.Ast.pdecls with
  | [ Ast.Dfun { fbody = [ { sdesc = Sswitch (_, cases, Some _); _ } ]; _ } ]
    ->
    Alcotest.(check int) "cases" 2 (List.length cases);
    Alcotest.(check bool)
      "multi-label" true
      ((List.hd cases).Ast.cvalues = [ 1; 2 ])
  | _ -> Alcotest.fail "expected a switch"

let test_parse_cast_vs_paren () =
  (* (x) + 1 is not a cast; (int) x is *)
  let e1 = Parser.parse_expr "(x) + 1" in
  (match e1.Ast.edesc with
  | Ast.Ebinop (Ast.Add, _, _) -> ()
  | _ -> Alcotest.fail "paren expr misparsed");
  let prog = parse "int g(int y) { return (int) y; }" in
  match prog.Ast.pdecls with
  | [ Ast.Dfun { fbody = [ { sdesc = Sreturn (Some e); _ } ]; _ } ] -> (
    match e.Ast.edesc with
    | Ast.Ecast (Ast.Tint, _) -> ()
    | _ -> Alcotest.fail "cast misparsed")
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_error_reports_location () =
  match parse "int f( { }" with
  | exception Parser.Error (_, loc) ->
    Alcotest.(check bool) "line 1" true (loc.Ast.line = 1)
  | _ -> Alcotest.fail "expected a parse error"

(* ---------- structural type equivalence ---------- *)

let env_of src = (check src).Typecheck.env

let test_equal_typedef_unfold () =
  let env =
    env_of "typedef int word; typedef word dword;"
  in
  Alcotest.(check bool)
    "typedef unfolds" true
    (Types.equal env (Tnamed "dword") Tint)

let test_equal_fun_structural () =
  let env = env_of "typedef int word;" in
  let f1 =
    Ast.Tfun { params = [ Ast.Tnamed "word" ]; varargs = false; ret = Tint }
  in
  let f2 = Ast.Tfun { params = [ Ast.Tint ]; varargs = false; ret = Tint } in
  Alcotest.(check bool) "structural" true (Types.equal env f1 f2)

let test_equal_recursive_struct () =
  let env =
    env_of "struct node { int v; struct node *next; };"
  in
  Alcotest.(check bool)
    "recursive struct equals itself" true
    (Types.equal env (Tstruct "node") (Tstruct "node"))

let test_unequal_fun () =
  let env = env_of "" in
  let f1 = Ast.Tfun { params = [ Ast.Tint ]; varargs = false; ret = Tint } in
  let f2 =
    Ast.Tfun { params = [ Ast.Tptr Ast.Tchar ]; varargs = false; ret = Tint }
  in
  Alcotest.(check bool) "different params" false (Types.equal env f1 f2)

let test_callable_varargs () =
  let env = env_of "" in
  let site = { Ast.params = [ Ast.Tint ]; varargs = true; ret = Ast.Tint } in
  let printf_like =
    { Ast.params = [ Ast.Tint; Ast.Tptr Ast.Tchar ]; varargs = false;
      ret = Ast.Tint }
  in
  let wrong_ret =
    { Ast.params = [ Ast.Tint ]; varargs = false; ret = Ast.Tvoid }
  in
  Alcotest.(check bool)
    "prefix params match" true
    (Types.callable env ~site ~fn:printf_like);
  Alcotest.(check bool)
    "return must match" false
    (Types.callable env ~site ~fn:wrong_ret)

let test_sizeof () =
  let env =
    env_of
      "struct pair { int a; int b; };\n\
       union u { struct pair p; int x; };\n\
       struct big { struct pair p; int tail[3]; };"
  in
  Alcotest.(check int) "pair" 2 (Types.sizeof env (Tstruct "pair"));
  Alcotest.(check int) "union" 2 (Types.sizeof env (Tunion "u"));
  Alcotest.(check int) "big" 5 (Types.sizeof env (Tstruct "big"))

let test_prefix_struct () =
  let env =
    env_of
      "struct base { int tag; int size; };\n\
       struct derived { int tag; int size; int extra; };\n\
       struct other { int size; int tag; };"
  in
  Alcotest.(check bool)
    "derived <: base" true
    (Types.prefix_struct env ~sub:"derived" ~sup:"base");
  Alcotest.(check bool)
    "base not <: derived" false
    (Types.prefix_struct env ~sub:"base" ~sup:"derived");
  Alcotest.(check bool)
    "field order matters" false
    (Types.prefix_struct env ~sub:"other" ~sup:"base")

let test_contains_fptr () =
  let env =
    env_of
      "struct ops { int (*open)(int); int mode; };\n\
       struct plain { int a; };\n\
       struct nested { struct ops o; };"
  in
  Alcotest.(check bool) "ops" true (Types.contains_fptr env (Tstruct "ops"));
  Alcotest.(check bool)
    "plain" false
    (Types.contains_fptr env (Tstruct "plain"));
  Alcotest.(check bool)
    "nested" true
    (Types.contains_fptr env (Tstruct "nested"))

(* ---------- typechecker ---------- *)

let test_tc_accepts_basics () =
  Alcotest.(check bool) "ok" true
    (typechecks
       "int square(int x) { return x * x; }\n\
        int main() { int y = square(7); return y; }")

let test_tc_rejects_unbound () =
  Alcotest.(check bool) "unbound" true (rejects "int f() { return zzz; }")

let test_tc_rejects_bad_call () =
  Alcotest.(check bool) "arity" true
    (rejects "int g(int x) { return x; } int f() { return g(1, 2); }")

let test_tc_rejects_return_mismatch () =
  Alcotest.(check bool) "struct return mismatch" true
    (rejects
       "struct s { int a; };\n\
        struct s gs;\n\
        int f() { return gs; }")

let test_tc_fptr_flow () =
  Alcotest.(check bool) "fptr" true
    (typechecks
       "int inc(int x) { return x + 1; }\n\
        int apply(int (*f)(int), int v) { return f(v); }\n\
        int main() { return apply(inc, 41); }")

let test_tc_address_taken () =
  let info =
    check
      "int inc(int x) { return x + 1; }\n\
       int dec(int x) { return x - 1; }\n\
       int (*fp)(int) = inc;\n\
       int main() { return fp(1) + dec(2); }"
  in
  Alcotest.(check bool)
    "inc is address-taken" true
    (List.mem "inc" info.Typecheck.address_taken);
  Alcotest.(check bool)
    "dec is not" false
    (List.mem "dec" info.Typecheck.address_taken)

let test_tc_permissive_scalar_cast () =
  (* C-with-warnings regime: fptr <-> void* casts type-check (the Analyzer
     flags them, the type checker does not reject them). *)
  Alcotest.(check bool) "void* cast ok" true
    (typechecks
       "int inc(int x) { return x + 1; }\n\
        void *p;\n\
        int main() { p = (void*) inc; return 0; }")

let test_tc_rejects_field_on_int () =
  Alcotest.(check bool) "no fields on int" true
    (rejects "int main() { int x; return x.f; }")

let test_tc_rejects_break_outside_loop () =
  Alcotest.(check bool) "break" true (rejects "int main() { break; return 0; }")

let test_tc_scopes () =
  Alcotest.(check bool) "inner scope dies" true
    (rejects "int main() { if (1) { int y = 2; } return y; }")

(* Regressions found by the fuzz generator: sizing an undefined
   struct/union used to escape as [Types.Unknown_type] instead of a
   located [Typecheck.Error] — [rejects] only counts the latter. *)
let test_tc_rejects_undefined_struct_local () =
  Alcotest.(check bool) "undefined struct local" true
    (rejects "int main() { struct nosuch x; return 0; }")

let test_tc_rejects_undefined_struct_sizeof () =
  Alcotest.(check bool) "sizeof undefined struct" true
    (rejects "int main() { return sizeof(struct nosuch); }")

let test_tc_rejects_undefined_struct_global () =
  Alcotest.(check bool) "undefined struct global" true
    (rejects "struct nosuch g;\nint main() { return 0; }")

let test_tc_rejects_undefined_union_local () =
  Alcotest.(check bool) "undefined union local" true
    (rejects "int main() { union nosuch x; return 0; }")

(* The varargs promotion corridor the generator leans on: char extra
   arguments are scalar and must be accepted; aggregate extras must not. *)
let test_tc_varargs_scalar_extras () =
  Alcotest.(check bool) "char extra promotes" true
    (typechecks
       "int f(int n, ...) { return n + __vararg(0); }\n\
        int main() { char c; c = 'a'; return f(2, c, 1); }");
  Alcotest.(check bool) "aggregate extra rejected" true
    (rejects
       "struct s { int a; };\n\
        struct s gs;\n\
        int f(int n, ...) { return n; }\n\
        int main() { return f(1, gs); }")

(* Deeply nested casts stay legal at any depth as long as each step is
   scalar-to-scalar. *)
let test_tc_nested_casts () =
  Alcotest.(check bool) "nested scalar casts" true
    (typechecks
       "int inc(int x) { return x + 1; }\n\
        int main() {\n\
        int (*f)(int);\n\
        f = (int (*)(int)) (char *) (void *) (int (*)(int)) inc;\n\
        return f(41);\n\
        }")

let test_tc_switch_duplicate_case () =
  Alcotest.(check bool) "dup case" true
    (rejects "int main() { switch (1) { case 1: return 1; case 1: return 2; } return 0; }")

let test_tc_intrinsics () =
  Alcotest.(check bool) "syscall/setjmp/longjmp" true
    (typechecks
       "int main() {\n\
        int buf[8];\n\
        if (setjmp(buf) == 0) { longjmp(buf, 1); }\n\
        return __syscall(1, 42);\n\
        }")

let test_tc_pointer_arith () =
  Alcotest.(check bool) "ptr arith" true
    (typechecks
       "int sum(int *a, int n) {\n\
        int s = 0;\n\
        int i;\n\
        for (i = 0; i < n; i = i + 1) { s = s + a[i]; }\n\
        return s + *(a + 1);\n\
        }")

(* ---------- property tests ---------- *)

let arb_small_int = QCheck.int_range (-1000000) 1000000

let prop_int_literal_roundtrip =
  QCheck.Test.make ~name:"parse_expr(int literal) is identity" ~count:200
    arb_small_int (fun n ->
      let src = if n < 0 then Printf.sprintf "(%d)" n else string_of_int n in
      let e = Parser.parse_expr src in
      match e.Ast.edesc with
      | Ast.Eint m -> m = n
      | Ast.Eunop (Ast.Neg, { edesc = Ast.Eint m; _ }) -> -m = n
      | _ -> false)

let prop_ty_equal_reflexive =
  (* structural equivalence is reflexive on randomly generated types *)
  let gen_ty =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then oneofl [ Ast.Tint; Ast.Tchar; Ast.Tptr Ast.Tint ]
          else
            frequency
              [
                (2, oneofl [ Ast.Tint; Ast.Tchar ]);
                (2, map (fun t -> Ast.Tptr t) (self (n / 2)));
                ( 1,
                  map2
                    (fun ts r ->
                      Ast.Tfun { params = ts; varargs = false; ret = r })
                    (list_size (int_bound 3) (self (n / 3)))
                    (self (n / 2)) );
                (1, map (fun t -> Ast.Tarray (t, 4)) (self (n / 2)));
              ]))
  in
  QCheck.Test.make ~name:"Types.equal is reflexive" ~count:200
    (QCheck.make gen_ty) (fun t -> Types.equal Types.empty t t)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "literals" `Quick test_lex_literals;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "block comment" `Quick test_lex_block_comment;
          Alcotest.test_case "error" `Quick test_lex_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "ptr declarator" `Quick test_declarator_ptr;
          Alcotest.test_case "array of ptr" `Quick test_declarator_array_of_ptr;
          Alcotest.test_case "fptr declarator" `Quick test_declarator_fptr;
          Alcotest.test_case "fptr array" `Quick test_declarator_fptr_array;
          Alcotest.test_case "fun returning ptr" `Quick
            test_declarator_fun_returning_ptr;
          Alcotest.test_case "varargs proto" `Quick test_varargs_proto;
          Alcotest.test_case "struct+typedef" `Quick test_parse_struct_typedef;
          Alcotest.test_case "function" `Quick test_parse_function;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "assoc" `Quick test_parse_assoc;
          Alcotest.test_case "switch" `Quick test_parse_switch;
          Alcotest.test_case "cast vs paren" `Quick test_parse_cast_vs_paren;
          Alcotest.test_case "error location" `Quick
            test_parse_error_reports_location;
        ] );
      ( "types",
        [
          Alcotest.test_case "typedef unfold" `Quick test_equal_typedef_unfold;
          Alcotest.test_case "fun structural" `Quick test_equal_fun_structural;
          Alcotest.test_case "recursive struct" `Quick
            test_equal_recursive_struct;
          Alcotest.test_case "unequal fun" `Quick test_unequal_fun;
          Alcotest.test_case "callable varargs" `Quick test_callable_varargs;
          Alcotest.test_case "sizeof" `Quick test_sizeof;
          Alcotest.test_case "prefix struct" `Quick test_prefix_struct;
          Alcotest.test_case "contains fptr" `Quick test_contains_fptr;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts basics" `Quick test_tc_accepts_basics;
          Alcotest.test_case "rejects unbound" `Quick test_tc_rejects_unbound;
          Alcotest.test_case "rejects bad call" `Quick test_tc_rejects_bad_call;
          Alcotest.test_case "rejects return mismatch" `Quick
            test_tc_rejects_return_mismatch;
          Alcotest.test_case "fptr flow" `Quick test_tc_fptr_flow;
          Alcotest.test_case "address taken" `Quick test_tc_address_taken;
          Alcotest.test_case "permissive scalar cast" `Quick
            test_tc_permissive_scalar_cast;
          Alcotest.test_case "rejects field on int" `Quick
            test_tc_rejects_field_on_int;
          Alcotest.test_case "rejects stray break" `Quick
            test_tc_rejects_break_outside_loop;
          Alcotest.test_case "scopes" `Quick test_tc_scopes;
          Alcotest.test_case "rejects undefined struct local" `Quick
            test_tc_rejects_undefined_struct_local;
          Alcotest.test_case "rejects sizeof undefined struct" `Quick
            test_tc_rejects_undefined_struct_sizeof;
          Alcotest.test_case "rejects undefined struct global" `Quick
            test_tc_rejects_undefined_struct_global;
          Alcotest.test_case "rejects undefined union local" `Quick
            test_tc_rejects_undefined_union_local;
          Alcotest.test_case "varargs scalar extras" `Quick
            test_tc_varargs_scalar_extras;
          Alcotest.test_case "nested casts" `Quick test_tc_nested_casts;
          Alcotest.test_case "duplicate case" `Quick
            test_tc_switch_duplicate_case;
          Alcotest.test_case "intrinsics" `Quick test_tc_intrinsics;
          Alcotest.test_case "pointer arith" `Quick test_tc_pointer_arith;
        ] );
      ("props", qc [ prop_int_literal_roundtrip; prop_ty_equal_reflexive ]);
    ]
