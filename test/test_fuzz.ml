(* Tests for the property-based fuzzing harness: a small smoke quota of
   the real oracle bank (the full campaign runs in CI and via `make
   fuzz`), the rewriter-sabotage self-test, corpus round-trips, and
   `mcfi fuzz` flag parsing. *)

module Prng = Mcfi_util.Prng

let smoke_iters = 25

(* ---------- the smoke quota ---------- *)

let test_smoke_quota () =
  let oc =
    Fuzz.Driver.run
      {
        Fuzz.Driver.c_seed = 42L;
        c_iters = smoke_iters;
        c_time_budget = 0.;
        c_corpus_dir = None;
        c_drop_check = None;
      }
  in
  (match oc.Fuzz.Driver.oc_failure with
  | None -> ()
  | Some rp ->
    let f = rp.Fuzz.Driver.rp_failure in
    Alcotest.failf "iteration %d (seed %Ld) failed oracle %d (%s): %s"
      rp.Fuzz.Driver.rp_iter rp.Fuzz.Driver.rp_seed f.Fuzz.Oracle.f_oracle
      f.Fuzz.Oracle.f_name f.Fuzz.Oracle.f_msg);
  Alcotest.(check int) "all iterations ran" smoke_iters oc.Fuzz.Driver.oc_iters

let test_deterministic_replay () =
  (* the same iteration seed reproduces the same rendered program *)
  let seed = Fuzz.Driver.iter_seed 42L 7 in
  let r1 = Fuzz.Spec.render (Fuzz.Driver.spec_of seed) in
  let r2 = Fuzz.Spec.render (Fuzz.Driver.spec_of seed) in
  Alcotest.(check bool) "static modules identical" true
    (r1.Fuzz.Spec.r_static = r2.Fuzz.Spec.r_static);
  Alcotest.(check bool) "dynamic modules identical" true
    (r1.Fuzz.Spec.r_dynamic = r2.Fuzz.Spec.r_dynamic)

(* ---------- the sabotage self-test ---------- *)

(* Dropping the check instrumentation at module-local site 0 must be
   caught (by the verifier oracle — the rewriter's output no longer
   verifies), and the counterexample must shrink small and replay. *)
let test_sabotage_caught () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "mcfi_fuzz_test" in
  let oc =
    Fuzz.Driver.run
      {
        Fuzz.Driver.c_seed = 7L;
        c_iters = 50;
        c_time_budget = 0.;
        c_corpus_dir = Some dir;
        c_drop_check = Some 0;
      }
  in
  match oc.Fuzz.Driver.oc_failure with
  | None -> Alcotest.fail "sabotaged rewriter not caught in 50 iterations"
  | Some rp ->
    let f = rp.Fuzz.Driver.rp_failure in
    Alcotest.(check int) "caught by the verifier oracle" 2
      f.Fuzz.Oracle.f_oracle;
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to %d <= 30 lines" rp.Fuzz.Driver.rp_lines)
      true
      (rp.Fuzz.Driver.rp_lines <= 30);
    (* the corpus file replays to the same failure *)
    (match rp.Fuzz.Driver.rp_file with
    | None -> Alcotest.fail "no corpus file written"
    | Some path -> begin
      match Fuzz.Driver.replay_file path with
      | Ok Fuzz.Driver.Reproduced -> Sys.remove path
      | Ok Fuzz.Driver.Fixed -> Alcotest.fail "sabotage replay came back clean"
      | Ok (Fuzz.Driver.Different f) ->
        Alcotest.failf "replay failed a different oracle: %s" f.Fuzz.Oracle.f_msg
      | Error m -> Alcotest.failf "replay: %s" m
    end)

(* ---------- shrinker ---------- *)

let test_shrink_converges () =
  (* with a predicate that accepts everything, the shrinker must reach a
     minimal spec: no workers, no drivers, no features *)
  let sp = Fuzz.Gen.generate (Prng.create 99L) in
  let min = Fuzz.Shrink.minimize ~budget:2000 ~reproduces:(fun _ -> true) sp in
  Alcotest.(check int) "no drivers" 0 (List.length min.Fuzz.Spec.sp_drivers);
  Alcotest.(check int) "no workers" 0 (List.length min.Fuzz.Spec.sp_workers);
  Alcotest.(check bool) "no setjmp" false min.Fuzz.Spec.sp_setjmp;
  Alcotest.(check int) "no dynamic modules" 0 min.Fuzz.Spec.sp_ndyn

let test_shrink_preserves_failure () =
  (* with a predicate that only accepts specs still containing a driver,
     the result keeps one *)
  let sp = Fuzz.Gen.generate (Prng.create 123L) in
  if sp.Fuzz.Spec.sp_drivers = [] then ()
  else begin
    let reproduces c = c.Fuzz.Spec.sp_drivers <> [] in
    let min = Fuzz.Shrink.minimize ~reproduces sp in
    Alcotest.(check bool) "a driver survives" true
      (min.Fuzz.Spec.sp_drivers <> [])
  end

(* ---------- corpus round-trip ---------- *)

let test_corpus_roundtrip () =
  let e =
    {
      Fuzz.Corpus.c_seed = -123456789L;
      c_oracle = 4;
      c_drop_check = Some 2;
      c_msg = "slot 3: foreign-class target 99 not rejected";
      c_static =
        [ ("main", "int main() { return 0; }\n"); ("aux1", "int x;\n") ];
      c_dynamic = [ ("dyn0", "int d(int a) { return a; }\n") ];
    }
  in
  match Fuzz.Corpus.of_string (Fuzz.Corpus.to_string e) with
  | Error m -> Alcotest.failf "round-trip parse: %s" m
  | Ok e' ->
    Alcotest.(check int64) "seed" e.Fuzz.Corpus.c_seed e'.Fuzz.Corpus.c_seed;
    Alcotest.(check int) "oracle" e.Fuzz.Corpus.c_oracle e'.Fuzz.Corpus.c_oracle;
    Alcotest.(check (option int)) "drop_check" e.Fuzz.Corpus.c_drop_check
      e'.Fuzz.Corpus.c_drop_check;
    Alcotest.(check (list (pair string string))) "static" e.Fuzz.Corpus.c_static
      e'.Fuzz.Corpus.c_static;
    Alcotest.(check (list (pair string string))) "dynamic"
      e.Fuzz.Corpus.c_dynamic e'.Fuzz.Corpus.c_dynamic

let test_corpus_rejects_garbage () =
  (match Fuzz.Corpus.of_string "not a corpus file\n" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Fuzz.Corpus.of_string "# seed: 5\n" with
  | Ok _ -> Alcotest.fail "missing oracle accepted"
  | Error _ -> ()

(* A truncated artifact that kept its metadata but lost every source
   section must fail to parse — and `mcfi fuzz --replay` on it must
   report the error (exit 1), not replay an empty program as a pass. *)
let test_corpus_rejects_sourceless () =
  let meta_only = "# mcfi-fuzz counterexample\n# seed: 5\n# oracle: 2\n" in
  (match Fuzz.Corpus.of_string meta_only with
  | Ok _ -> Alcotest.fail "source-less corpus file accepted"
  | Error _ -> ());
  let path = Filename.temp_file "mcfi_fuzz_meta_only" ".c" in
  let oc = open_out path in
  output_string oc meta_only;
  close_out oc;
  let r = Fuzz.Driver.replay_file path in
  Sys.remove path;
  match r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay of a source-less corpus file succeeded"

(* ---------- shrinker determinism ---------- *)

(* The same counterexample shrunk twice from the same seed must produce
   byte-identical corpus files: the shrinker is pure greedy descent over
   a deterministic candidate list, and replayable artifacts depend on
   it staying that way. *)
let test_shrink_deterministic_artifacts () =
  let artifact seed =
    let sp = Fuzz.Gen.generate (Prng.create seed) in
    let reproduces c = c.Fuzz.Spec.sp_drivers <> [] in
    let min = Fuzz.Shrink.minimize ~budget:400 ~reproduces sp in
    let r = Fuzz.Spec.render min in
    Fuzz.Corpus.to_string
      {
        Fuzz.Corpus.c_seed = seed;
        c_oracle = 4;
        c_drop_check = None;
        c_msg = "determinism probe";
        c_static = r.Fuzz.Spec.r_static;
        c_dynamic = r.Fuzz.Spec.r_dynamic;
      }
  in
  List.iter
    (fun seed ->
      let a = artifact seed in
      let b = artifact seed in
      Alcotest.(check string)
        (Printf.sprintf "seed %Ld shrinks identically" seed)
        a b)
    [ 11L; 123L; -7L ]

(* ---------- `mcfi fuzz` flag parsing ---------- *)

let eval_mode argv =
  match
    Cmdliner.Cmd.eval_value ~argv
      (Cmdliner.Cmd.v (Cmdliner.Cmd.info "fuzz")
         Cmdliner.Term.(const (fun m -> m) $ Fuzz.Cli.mode_term))
  with
  | Ok (`Ok m) -> m
  | _ -> Alcotest.fail "flag parsing failed"

let test_cli_defaults () =
  match eval_mode [| "fuzz" |] with
  | Fuzz.Cli.Fuzz cfg ->
    Alcotest.(check int64) "seed" 1L cfg.Fuzz.Driver.c_seed;
    Alcotest.(check int) "iters" 500 cfg.Fuzz.Driver.c_iters;
    Alcotest.(check (float 0.0)) "budget" 0. cfg.Fuzz.Driver.c_time_budget;
    Alcotest.(check (option string)) "corpus" (Some "corpus")
      cfg.Fuzz.Driver.c_corpus_dir;
    Alcotest.(check (option int)) "drop_check" None cfg.Fuzz.Driver.c_drop_check
  | Fuzz.Cli.Replay _ -> Alcotest.fail "defaults parsed as replay"

let test_cli_flags () =
  match
    eval_mode
      [|
        "fuzz"; "--seed=-77"; "--iters"; "2000"; "--time-budget"; "1.5";
        "--corpus"; "cexs"; "--drop-check"; "3";
      |]
  with
  | Fuzz.Cli.Fuzz cfg ->
    Alcotest.(check int64) "seed" (-77L) cfg.Fuzz.Driver.c_seed;
    Alcotest.(check int) "iters" 2000 cfg.Fuzz.Driver.c_iters;
    Alcotest.(check (float 0.0)) "budget" 1.5 cfg.Fuzz.Driver.c_time_budget;
    Alcotest.(check (option string)) "corpus" (Some "cexs")
      cfg.Fuzz.Driver.c_corpus_dir;
    Alcotest.(check (option int)) "drop_check" (Some 3)
      cfg.Fuzz.Driver.c_drop_check
  | Fuzz.Cli.Replay _ -> Alcotest.fail "flags parsed as replay"

let test_cli_replay_mode () =
  match eval_mode [| "fuzz"; "--replay"; "a.c"; "--replay"; "b.c" |] with
  | Fuzz.Cli.Replay files ->
    Alcotest.(check (list string)) "files in order" [ "a.c"; "b.c" ] files
  | Fuzz.Cli.Fuzz _ -> Alcotest.fail "--replay parsed as a fuzz campaign"

let test_cli_bad_flag_rejected () =
  match
    Cmdliner.Cmd.eval_value
      ~argv:[| "fuzz"; "--iters"; "lots" |]
      (Cmdliner.Cmd.v (Cmdliner.Cmd.info "fuzz")
         Cmdliner.Term.(const (fun m -> m) $ Fuzz.Cli.mode_term))
  with
  | Ok (`Ok _) -> Alcotest.fail "non-numeric --iters accepted"
  | _ -> ()

let () =
  Alcotest.run "fuzz"
    [
      ( "oracle bank",
        [
          Alcotest.test_case "smoke quota" `Slow test_smoke_quota;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
          Alcotest.test_case "sabotage caught" `Slow test_sabotage_caught;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "converges" `Quick test_shrink_converges;
          Alcotest.test_case "preserves failure" `Quick
            test_shrink_preserves_failure;
          Alcotest.test_case "deterministic artifacts" `Quick
            test_shrink_deterministic_artifacts;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_corpus_rejects_garbage;
          Alcotest.test_case "rejects source-less files" `Quick
            test_corpus_rejects_sourceless;
        ] );
      ( "cli",
        [
          Alcotest.test_case "defaults" `Quick test_cli_defaults;
          Alcotest.test_case "flags" `Quick test_cli_flags;
          Alcotest.test_case "replay mode" `Quick test_cli_replay_mode;
          Alcotest.test_case "bad flag rejected" `Quick
            test_cli_bad_flag_rejected;
        ] );
    ]
