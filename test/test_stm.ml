(* The STM zoo (lib/idtables/stm.ml): every commit protocol behind the
   Tx-style interface must produce the same outcomes from the same table
   states — Pass only on bit-identical IDs, mid-install skew never
   resolves to a wrong verdict — and must share the torn-update recovery
   guarantee, because all three run the same locked transaction body.
   The seqlock variant additionally queues writers through a ticket, and
   recovery must bypass that queue. *)

open Idtables

let per_variant name f =
  List.map
    (fun v ->
      Alcotest.test_case
        (Printf.sprintf "%s [%s]" name (Stm.name v))
        `Quick
        (fun () -> f v))
    Stm.all

let mk () = Tables.create ~code_base:0x1000 ~capacity:256 ~bary_slots:8 ()

(* Two classes: slot 0 reaches 0x1010, slot 1 reaches 0x1020. *)
let seed_cfg v t =
  Stm.update v t ~tary:[ (0x1010, 3); (0x1020, 4) ] ~bary:[ (0, 3); (1, 4) ]

let outcome = Alcotest.testable Fmt.(any "outcome") ( = )

(* ---- outcome agreement ---- *)

let test_outcomes v =
  let t = mk () in
  let (_ : int) = seed_cfg v t in
  let check = Stm.check v t in
  Alcotest.check outcome "own target passes" Tx.Pass
    (check ~bary_index:0 ~target:0x1010);
  Alcotest.check outcome "other class's target violates" Tx.Violation
    (check ~bary_index:0 ~target:0x1020);
  Alcotest.check outcome "unmapped target fails closed" Tx.Violation
    (check ~bary_index:0 ~target:0x1040);
  Alcotest.check outcome "misaligned target fails closed" Tx.Violation
    (check ~bary_index:0 ~target:0x1012);
  (* a second install re-keys both classes under the bumped version; the
     old edges must not linger *)
  let (_ : int) = Stm.update v t ~tary:[ (0x1010, 5) ] ~bary:[ (0, 5) ] in
  Alcotest.check outcome "rekeyed edge passes" Tx.Pass
    (check ~bary_index:0 ~target:0x1010);
  Alcotest.check outcome "dropped target violates" Tx.Violation
    (check ~bary_index:0 ~target:0x1020)

(* ---- mid-install checks fail closed, never wrongly pass ---- *)

let test_mid_install_skew v =
  let t = mk () in
  let (_ : int) = seed_cfg v t in
  (* from inside the install window (the got_update hook runs between
     the Tary and Bary phases) a bounded check must exhaust its retries:
     the window is skewed, and no variant may resolve it to a verdict *)
  let during = ref None in
  let (_ : int) =
    Stm.update v t
      ~got_update:(fun () ->
        during :=
          Some (Stm.check v ~max_retries:3 t ~bary_index:0 ~target:0x1010))
      ~tary:[ (0x1010, 3); (0x1020, 4) ]
      ~bary:[ (0, 3); (1, 4) ]
  in
  (match !during with
  | Some Tx.Retries_exhausted -> ()
  | Some o ->
    Alcotest.failf "mid-install check resolved to %s under %s"
      (match o with
      | Tx.Pass -> "Pass"
      | Tx.Violation -> "Violation"
      | Tx.Retries_exhausted -> assert false)
      (Stm.name v)
  | None -> Alcotest.fail "got_update hook never ran");
  (* after the install completes the same check passes *)
  Alcotest.check outcome "post-install pass" Tx.Pass
    (Stm.check v t ~bary_index:0 ~target:0x1010)

(* ---- torn update recovered by the next lock holder ---- *)

let test_torn_recovery v =
  let t = mk () in
  let (_ : int) = seed_cfg v t in
  (* kill the updater after its first Tary publish: phase 1 torn *)
  Faults.arm (Faults.Plan.At { point = Faults.Plan.Nth_tary_write; hit = 1 });
  (match
     Stm.update v t ~tary:[ (0x1010, 7); (0x1020, 7) ] ~bary:[ (0, 7); (1, 7) ]
   with
  | (_ : int) -> Alcotest.fail "armed kill never fired"
  | exception Faults.Injected _ -> ());
  Faults.disarm ();
  Alcotest.(check bool) "journal left behind" true (Tables.journal t <> None);
  (* explicit recovery redoes the torn install to completion *)
  Alcotest.(check bool) "recover redoes" true (Stm.recover v t);
  Alcotest.(check bool) "journal consumed" true (Tables.journal t = None);
  Alcotest.check outcome "torn install completed" Tx.Pass
    (Stm.check v t ~bary_index:0 ~target:0x1010);
  Alcotest.check outcome "merged classes pass" Tx.Pass
    (Stm.check v t ~bary_index:0 ~target:0x1020);
  Alcotest.(check bool) "nothing further to redo" false (Stm.recover v t)

let test_torn_recovered_by_next_update v =
  let t = mk () in
  let (_ : int) = seed_cfg v t in
  Faults.arm
    (Faults.Plan.At { point = Faults.Plan.Between_tary_and_bary; hit = 1 });
  (match Stm.update v t ~tary:[ (0x1010, 9) ] ~bary:[ (0, 9) ] with
  | (_ : int) -> Alcotest.fail "armed kill never fired"
  | exception Faults.Injected _ -> ());
  Faults.disarm ();
  (* the next updater — same variant, fresh CFG — recovers the torn
     predecessor implicitly before installing its own; for seqlock this
     also shows a killed writer released its ticket on unwind *)
  let (_ : int) = Stm.update v t ~tary:[ (0x1020, 2) ] ~bary:[ (1, 2) ] in
  Alcotest.(check bool) "journal consumed by next updater" true
    (Tables.journal t = None);
  Alcotest.check outcome "successor CFG live" Tx.Pass
    (Stm.check v t ~bary_index:1 ~target:0x1020)

(* ---- seqlock specifics ---- *)

let test_seqlock_ticket_order () =
  (* the ticket dispenser itself is FIFO: draws are consecutive and
     serving admits them strictly in draw order *)
  let t = mk () in
  let a = Tables.ticket_draw t in
  let b = Tables.ticket_draw t in
  let c = Tables.ticket_draw t in
  Alcotest.(check (pair int int)) "consecutive draws" (a + 1, a + 2) (b, c);
  Alcotest.(check int) "first drawn is first served" a (Tables.ticket_serving t);
  Tables.ticket_advance t;
  Alcotest.(check int) "then the second" b (Tables.ticket_serving t)

let test_seqlock_recovery_bypasses_ticket () =
  let t = mk () in
  let (_ : int) = seed_cfg Stm.Seqlock t in
  Faults.arm (Faults.Plan.At { point = Faults.Plan.Nth_tary_write; hit = 1 });
  (match Stm.update Stm.Seqlock t ~tary:[ (0x1010, 6) ] ~bary:[ (0, 6) ] with
  | (_ : int) -> Alcotest.fail "armed kill never fired"
  | exception Faults.Injected _ -> ());
  Faults.disarm ();
  (* park a phantom writer at the head of the queue: any ticketed writer
     would now wait forever, but recovery must repair the tables without
     queueing behind the convoy *)
  let (_ : int) = Tables.ticket_draw t in
  Alcotest.(check bool) "recovery ran despite the queue" true
    (Stm.recover Stm.Seqlock t);
  Alcotest.check outcome "repaired" Tx.Pass
    (Stm.check Stm.Seqlock t ~bary_index:0 ~target:0x1010)

(* ---- names ---- *)

let test_names () =
  List.iter
    (fun v ->
      match Stm.of_string (Stm.name v) with
      | Ok v' -> Alcotest.(check bool) "name roundtrip" true (v = v')
      | Error e -> Alcotest.fail e)
    Stm.all;
  match Stm.of_string "tl2" with
  | Ok _ -> Alcotest.fail "accepted an unknown variant"
  | Error _ -> ()

let () =
  Alcotest.run "stm"
    [
      ("outcomes", per_variant "pass/violation agreement" test_outcomes);
      ("skew", per_variant "mid-install checks fail closed" test_mid_install_skew);
      ( "recovery",
        per_variant "torn install redone explicitly" test_torn_recovery
        @ per_variant "torn install redone by next updater"
            test_torn_recovered_by_next_update );
      ( "seqlock",
        [
          Alcotest.test_case "ticket dispenser is FIFO" `Quick
            test_seqlock_ticket_order;
          Alcotest.test_case "recovery bypasses the ticket" `Quick
            test_seqlock_recovery_bypasses_ticket;
        ] );
      ("naming", [ Alcotest.test_case "roundtrip" `Quick test_names ]);
    ]
