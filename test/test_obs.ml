(* The observability layer: flight-recorder concurrency (no torn
   events, no lost trigger — S3 of the forensics issue), the SLO
   engine's rising-edge alert discipline, time-series ring wraparound,
   forensic-bundle JSON round-trips through the real parser/validator,
   exact bundle accounting under torture kills, and an SLO-driven
   breaker trip in a fleet chaos scenario. *)

module FR = Obs.Flightrec

let check_pass = Telemetry.Event.(kind_code Check_pass)

(* Writers hammer per-domain rings with checksummed events while the
   main domain snapshots forensic bundles (each snapshot drains the
   rings mid-write).  Every event that survives — in the final drain or
   inside any bundle — must be internally consistent, per-domain
   sequences must be strictly increasing, and every trigger request
   must have produced exactly one bundle. *)
let test_flightrec_concurrency () =
  FR.reset ();
  Obs.Slo.reset ();
  let writers = 4 and notes = 6_000 and triggers = 40 in
  let doms =
    List.init writers (fun d ->
        Domain.spawn (fun () ->
            let t = FR.tally () in
            for i = 0 to notes - 1 do
              let a = (d * 1_000_000) + i and b = i * 7 in
              FR.note ~kind:check_pass ~ctx:(d + 1) ~a ~b ~c:((a * 31) + b);
              FR.bump t ~outcome:(i mod 3) ~retries:(i land 1)
            done))
  in
  let made = ref 0 in
  for k = 0 to triggers - 1 do
    (match
       FR.record_trigger FR.Oracle_anomaly
         ~reason:(Printf.sprintf "synthetic anomaly %d" k)
         ~extra:[ ("k", Obs.Json.num k) ]
         ()
     with
    | Some _ -> incr made
    | None -> Alcotest.failf "trigger %d lost (recording on, uncapped)" k);
    (* a tiny pause so snapshots interleave with live writers *)
    if k land 7 = 0 then Domain.cpu_relax ()
  done;
  List.iter Domain.join doms;
  Alcotest.(check int) "no lost trigger" triggers !made;
  Alcotest.(check int) "requests counted" triggers
    (FR.trigger_requests FR.Oracle_anomaly);
  Alcotest.(check int) "all bundles emitted" triggers (FR.emitted ());
  Alcotest.(check int) "nothing dropped" 0 (FR.dropped ());
  let consistent where (evs : FR.event list) =
    List.iter
      (fun (e : FR.event) ->
        if e.ev_kind <> check_pass then
          Alcotest.failf "%s: torn kind %d" where e.ev_kind;
        if e.ev_c <> (e.ev_a * 31) + e.ev_b then
          Alcotest.failf "%s: torn event d%d #%d (a=%d b=%d c=%d)" where
            e.ev_domain e.ev_seq e.ev_a e.ev_b e.ev_c)
      evs;
    (* per-domain publish ordinals strictly increase *)
    let last = Hashtbl.create 8 in
    List.iter
      (fun (e : FR.event) ->
        (match Hashtbl.find_opt last e.FR.ev_domain with
        | Some s when s >= e.FR.ev_seq ->
          Alcotest.failf "%s: domain %d seq %d after %d" where e.ev_domain
            e.ev_seq s
        | _ -> ());
        Hashtbl.replace last e.ev_domain e.ev_seq)
      evs
  in
  consistent "final drain" (FR.drain ());
  List.iter
    (fun (b : FR.bundle) -> consistent "bundle snapshot" b.FR.bu_events)
    (FR.bundles ());
  (* the per-domain tallies survive concurrent bumping exactly *)
  let checks, passes, violations, exhausted, retries = FR.tally_totals () in
  let per_outcome = writers * notes / 3 in
  Alcotest.(check int) "checks" (writers * notes) checks;
  Alcotest.(check int) "passes" per_outcome passes;
  Alcotest.(check int) "violations" per_outcome violations;
  Alcotest.(check int) "exhausted" per_outcome exhausted;
  Alcotest.(check int) "retries" (writers * notes / 2) retries;
  FR.reset ()

let test_slo_rising_edge () =
  Obs.Slo.reset ();
  let obj =
    Obs.Slo.objective ~target:0.9 ~fast_window:3 ~slow_window:6 ~burn:2.0
      "unit-objective"
  in
  let tk = Obs.Slo.tracker obj ~entity:"unit" in
  let tick = ref 0 in
  let step ~good ~total =
    incr tick;
    Obs.Slo.observe tk ~good ~total;
    Obs.Slo.evaluate tk ~tick:!tick
  in
  for _ = 1 to 10 do
    match step ~good:10 ~total:10 with
    | None -> ()
    | Some _ -> Alcotest.fail "alert while healthy"
  done;
  (* 50% errors against a 10% budget: the fast window crosses on the
     2nd bad tick, the slow window on the 3rd — one rising edge *)
  let first = ref None in
  for i = 1 to 6 do
    match step ~good:5 ~total:10 with
    | Some al ->
      if !first <> None then Alcotest.fail "re-alerted inside one episode";
      Alcotest.(check int) "alert on the 3rd bad tick" 3 i;
      if al.Obs.Slo.al_fast_burn < 2.0 || al.Obs.Slo.al_slow_burn < 2.0 then
        Alcotest.fail "alert below threshold in a window";
      first := Some al
    | None -> ()
  done;
  let first =
    match !first with
    | Some al -> al
    | None -> Alcotest.fail "degradation raised no alert"
  in
  Alcotest.(check bool) "alerting latched" true (Obs.Slo.alerting tk);
  (* recover, then a second episode raises a second, distinct alert *)
  for _ = 1 to 8 do
    match step ~good:10 ~total:10 with
    | None -> ()
    | Some _ -> Alcotest.fail "alert during recovery"
  done;
  let second = ref None in
  for _ = 1 to 6 do
    match step ~good:5 ~total:10 with
    | Some al ->
      if !second <> None then Alcotest.fail "re-alerted inside episode 2";
      second := Some al
    | None -> ()
  done;
  (match !second with
  | Some al ->
    if al.Obs.Slo.al_id <= first.Obs.Slo.al_id then
      Alcotest.fail "second episode reused an alert id"
  | None -> Alcotest.fail "second degradation raised no alert");
  Alcotest.(check int) "global log counted both" 2 (Obs.Slo.alert_count ());
  Obs.Slo.reset ()

let test_timeseries_wrap () =
  Obs.Timeseries.reset ();
  let s = Obs.Timeseries.series ~cap:8 "unit.series" in
  for i = 0 to 19 do
    Obs.Timeseries.push s (float_of_int i)
  done;
  Alcotest.(check int) "capped length" 8 (Obs.Timeseries.length s);
  let vals = List.map snd (Obs.Timeseries.recent s 8) in
  Alcotest.(check (list (float 0.0)))
    "oldest-first tail"
    [ 12.; 13.; 14.; 15.; 16.; 17.; 18.; 19. ]
    vals;
  (match Obs.Timeseries.last s with
  | Some (_, v) -> Alcotest.(check (float 0.0)) "last" 19.0 v
  | None -> Alcotest.fail "last missing");
  Alcotest.(check (float 0.0))
    "sum of recent 4" 70.0
    (Obs.Timeseries.sum_recent s 4);
  (* find-or-create returns the same ring *)
  let s' = Obs.Timeseries.series "unit.series" in
  Alcotest.(check int) "same ring" 8 (Obs.Timeseries.length s');
  Obs.Timeseries.reset ()

let test_bundle_roundtrip () =
  FR.reset ();
  for i = 0 to 9 do
    FR.note ~kind:check_pass ~ctx:0 ~a:i ~b:(i * 2) ~c:((i * 31) + (i * 2))
  done;
  let bundle =
    match
      FR.record_trigger FR.Oracle_anomaly ~reason:"round-trip probe"
        ~extra:
          [ ("shard", Obs.Json.num 3); ("detail", Obs.Json.Str "probe") ]
        ()
    with
    | Some b -> b
    | None -> Alcotest.fail "trigger produced no bundle"
  in
  let text = Obs.Json.to_string (FR.bundle_json bundle) in
  let parsed =
    match Mcfi.Benchjson.parse text with
    | Ok j -> j
    | Error m -> Alcotest.failf "bundle JSON does not re-parse: %s" m
  in
  (match Mcfi.Forensics.validate parsed with
  | Ok () -> ()
  | Error m -> Alcotest.failf "bundle failed validation: %s" m);
  (* tampering with the schema identity must be caught *)
  let rekey k v = function
    | Mcfi.Benchjson.Obj kvs ->
      Mcfi.Benchjson.Obj
        (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) kvs)
    | j -> j
  in
  (match
     Mcfi.Forensics.validate (rekey "schema" (Mcfi.Benchjson.Str "other") parsed)
   with
  | Ok () -> Alcotest.fail "validated a foreign schema"
  | Error _ -> ());
  (match
     Mcfi.Forensics.validate
       (rekey "schema_version"
          (Mcfi.Benchjson.Num (float_of_int (FR.schema_version + 1)))
          parsed)
   with
  | Ok () -> Alcotest.fail "validated a bumped schema version"
  | Error _ -> ());
  FR.reset ()

(* Every kill the torture harness injects must yield exactly one
   forensic bundle — the uncapped Injected_kill accounting the
   acceptance gate demands. *)
let test_torture_kill_accounting () =
  let sc =
    {
      (Stress.default ~seed:0x0B5E11L) with
      Stress.updates = 3_000;
      kill_every = 40;
      loader_loads = 0;
      shards = 2;
    }
  in
  let r = Stress.run sc in
  (match r.Stress.rp_anomalies with
  | [] -> ()
  | an ->
    Alcotest.failf "oracle anomalies:@.%a" (Fmt.list Stress.pp_anomaly) an);
  if r.Stress.rp_kills = 0 then Alcotest.fail "scenario injected no kills";
  Alcotest.(check int)
    "one bundle per injected kill" r.Stress.rp_kills
    (FR.trigger_requests FR.Injected_kill);
  Alcotest.(check int)
    "no anomaly bundles without anomalies" 0
    (FR.trigger_requests FR.Oracle_anomaly);
  FR.reset ()

(* A shard with two tenants under relentless mid-install kills burns
   its crash-free SLO in both windows; with [fc_slo_breaker] the alert
   must trip the shard breaker and stamp its id into the trip log. *)
let test_fleet_slo_breaker_trip () =
  let seed = 0x510B0BL in
  let fc =
    {
      (Supervisor.Fleet.smoke ~seed) with
      Supervisor.Fleet.fc_tenants = 8;
      fc_workers = 2;
      fc_ticks = 80;
      fc_shards = 4;
      fc_loaders = 0;
      fc_base_installs = 6;
      fc_chaos =
        [ Faults.Tenant.Random { seed; one_in = 12; action = Kill_install } ];
      fc_slo_breaker = true;
      fc_tick_s = 0.001;
    }
  in
  let r = Supervisor.Fleet.run fc in
  (match r.Supervisor.Fleet.fr_anomalies with
  | [] -> ()
  | an ->
    Alcotest.failf "oracle anomalies:@.%a" (Fmt.list Stress.pp_anomaly) an);
  if r.Supervisor.Fleet.fr_kills = 0 then Alcotest.fail "chaos injected no kills";
  if r.Supervisor.Fleet.fr_slo_alerts = 0 then
    Alcotest.fail "the SLO engine raised no burn-rate alert";
  (match r.Supervisor.Fleet.fr_alert_trips with
  | [] -> Alcotest.fail "no alert-driven breaker trip"
  | trips ->
    List.iter
      (fun (sh, al) ->
        if sh < 0 || sh >= fc.Supervisor.Fleet.fc_shards then
          Alcotest.failf "trip names shard %d outside the fleet" sh;
        if al < 0 then Alcotest.failf "trip carries invalid alert id %d" al)
      trips);
  Alcotest.(check bool)
    "trips counted as quarantined shards" true
    (r.Supervisor.Fleet.fr_shards_quarantined
    >= List.length r.Supervisor.Fleet.fr_alert_trips);
  (* every alert-driven quarantine snapshotted a transition bundle *)
  if FR.trigger_requests FR.Supervisor_transition = 0 then
    Alcotest.fail "no supervisor-transition bundle recorded";
  FR.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "flightrec",
        [
          Alcotest.test_case "concurrent writers vs snapshots" `Quick
            test_flightrec_concurrency;
          Alcotest.test_case "bundle JSON round-trip" `Quick
            test_bundle_roundtrip;
          Alcotest.test_case "torture kill accounting" `Quick
            test_torture_kill_accounting;
        ] );
      ( "slo",
        [
          Alcotest.test_case "rising-edge alerts" `Quick test_slo_rising_edge;
          Alcotest.test_case "fleet breaker trips on alert" `Quick
            test_fleet_slo_breaker_trip;
        ] );
      ( "timeseries",
        [ Alcotest.test_case "ring wraparound" `Quick test_timeseries_wrap ] );
    ]
