# mcfi-fuzz counterexample
# seed: -7046029254386353124
# oracle: 2 verifier
# drop-check: 0
# msg: verifier rejected the rewriter's output: load: module a.out failed verification: 0x10046: naked ret in instrumented code; 0x114c2: naked ret in instrumented code; 0x10000: 32 committing indirect branches but 34 site records
=== static main ===
int main() {
  int s;
  int i;
  (s = 0);
  printf("%d;", (s + 0));
  return 0;
}
