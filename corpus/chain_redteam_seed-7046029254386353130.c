# mcfi-fuzz counterexample
# seed: -7046029254386353130
# oracle: 7 redteam
# msg: redteam: in-policy chain seed=-7046029254386353130 start-slot=36 hops=1 goal=syscall-dlopen (confirmed)
=== static main ===
int (*gops[2])(int) = { w0, w1 };

int w0(int a) {
  int x;
  int i;
  (x = ((24 - a) ^ ((-6) - a)));
  for ((i = 0); (i < 2); (i = (i + 1))) {
                                          (x = (x + a));
                                        }
  return (x ^ 15);
}

int w1(int a) {
  int x;
  int i;
  (x = a);
  for ((i = 0); (i < 2); (i = (i + 1))) {
                                          (x = (x + ((39 ^ i) - (a - x))));
                                        }
  return (x ^ 33);
}

int main() {
  int s;
  int i;
  (s = 0);
  for ((i = 0); (i < 4); (i = (i + 1))) {
                                          (s = (s + (gops[(i & 1)])(i)));
                                        }
  (s = (s + w0((35 - 5))));
  (s = (s + w1(s)));
  printf("%d;", (s + 0));
  return 0;
}
=== static redteam0 ===
int redteam_decoy(int x) {
  __syscall(4, x);
  __syscall(0, 70 + (x & 7));
  return x;
}
int (*redteam_ops[2])(int) = { redteam_decoy, redteam_decoy };
